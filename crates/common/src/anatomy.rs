//! Phase-attributed latency anatomy.
//!
//! End-to-end latency histograms say *how slow* the tail is; this module says
//! *where the time went*. Every in-flight request can carry a [`PhaseSheet`]
//! — a per-op stamp accumulator that partitions the op's wall-clock life into
//! a fixed taxonomy of [`Phase`]s (admission queueing, dispatch, execution,
//! batch wait, sequencing, replication quorum, storage I/O, replay, ...).
//!
//! The sheet is a *phase clock*, not a set of independent timers: at any
//! instant exactly one phase is charged (the top of a small phase stack), and
//! every transition first accrues the elapsed virtual time to the outgoing
//! phase. Because the per-phase accruals form a consecutive partition of the
//! op's lifetime, their sum equals the end-to-end latency **exactly** (integer
//! nanoseconds) for ops driven by a single logical attempt — this is what lets
//! the bench assert per-op reconciliation within 1 %.
//!
//! Determinism: the anatomy layer is pure bookkeeping on the simulator's
//! virtual clock. It draws no randomness, spawns no tasks, and never sleeps,
//! so enabling it cannot perturb the event interleaving — bench fingerprints
//! are bit-identical with anatomy on or off, and two seeded runs produce
//! byte-identical stamp rows ([`Anatomy::rows_jsonl`]).
//!
//! Threading mirrors the tracer in [`crate::trace`]: the gateway opens a
//! sheet per request, binds it to the invocation's [`crate::InstanceId`] so
//! the runtime and `Env` can find it across the scheduling boundary, and the
//! `Env` re-arms a context cell immediately before each substrate call so the
//! shared log and KV store can pick the sheet up without plumbing it through
//! every signature.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use std::time::Duration;

use crate::collections::FxHashMap;
use crate::metrics::Histogram;

/// One slice of the request pipeline. Phases partition an op's lifetime:
/// at any instant exactly one phase is being charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Phase {
    /// Gateway admission: waiting for a worker slot before scheduling.
    Admission = 0,
    /// Node selection plus the RPC hop to the chosen function node.
    Dispatch = 1,
    /// Function compute and in-memory protocol bookkeeping (attempt residual).
    Execution = 2,
    /// Protocol read-op residual (resolution logic around the storage trips).
    ProtoRead = 3,
    /// Protocol write-op residual.
    ProtoWrite = 4,
    /// Protocol txn/init/sync/finish/invoke residual.
    ProtoTxn = 5,
    /// Append's network trip from the node to the sequencer.
    LogHop = 6,
    /// Parked in an open group-commit batch waiting for size/deadline.
    BatchWait = 7,
    /// Sequencer admission backlog plus ordering.
    Sequencer = 8,
    /// Replication-quorum storage write for an append.
    Quorum = 9,
    /// Shared-log read round trips (`read_prev` / `read_next` / streams).
    LogRead = 10,
    /// KV-store round trips.
    StoreIo = 11,
    /// §5 recovery replay: re-fetching the step log on a retried attempt.
    Replay = 12,
    /// Crash-detection delay between attempts after `NodeCrashed`.
    Recovery = 13,
}

/// Number of phases in the taxonomy (length of [`Phase::ALL`]).
pub const PHASE_COUNT: usize = 14;

impl Phase {
    /// Every phase, in display (and index) order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::Admission,
        Phase::Dispatch,
        Phase::Execution,
        Phase::ProtoRead,
        Phase::ProtoWrite,
        Phase::ProtoTxn,
        Phase::LogHop,
        Phase::BatchWait,
        Phase::Sequencer,
        Phase::Quorum,
        Phase::LogRead,
        Phase::StoreIo,
        Phase::Replay,
        Phase::Recovery,
    ];

    /// Stable snake_case name used in JSONL stamps and the waterfall report.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Admission => "admission",
            Phase::Dispatch => "dispatch",
            Phase::Execution => "execution",
            Phase::ProtoRead => "proto_read",
            Phase::ProtoWrite => "proto_write",
            Phase::ProtoTxn => "proto_txn",
            Phase::LogHop => "log_hop",
            Phase::BatchWait => "batch_wait",
            Phase::Sequencer => "sequencer",
            Phase::Quorum => "quorum",
            Phase::LogRead => "log_read",
            Phase::StoreIo => "store_io",
            Phase::Replay => "replay",
            Phase::Recovery => "recovery",
        }
    }

    /// Index into per-phase arrays (`0..PHASE_COUNT`).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Opaque phases swallow nested stamps: while one is on top of the
    /// stack, `enter`/`exit` pairs from lower layers are counted but not
    /// pushed, so the whole interval is attributed to the opaque phase.
    /// Replay is opaque — the recovery story wants the *entire* step-log
    /// re-fetch charged to replay, not scattered over log-read sub-phases.
    fn is_opaque(self) -> bool {
        matches!(self, Phase::Replay)
    }
}

/// Final per-op accrual produced by [`PhaseSheet::finish`].
#[derive(Debug, Clone, Copy)]
pub struct Stamp {
    /// Nanoseconds accrued to each phase, indexed by [`Phase::index`].
    pub phase_ns: [u64; PHASE_COUNT],
    /// End-to-end nanoseconds from open to finish.
    pub total_ns: u64,
}

impl Stamp {
    /// Sum of all per-phase accruals. Equals `total_ns` exactly for ops
    /// driven by a single logical attempt chain.
    pub fn sum_ns(&self) -> u64 {
        self.phase_ns.iter().sum()
    }
}

struct SheetInner {
    acc: [u64; PHASE_COUNT],
    stack: Vec<Phase>,
    last_ns: u64,
    opened_ns: u64,
    open: bool,
    /// Depth of swallowed `enter`s while an opaque phase is on top.
    suppressed: u32,
}

/// Per-op phase clock. Cheap (`Rc`-shared, `RefCell`-guarded, single
/// threaded) and tolerant: every operation on a finished sheet is a no-op,
/// which makes stamps from superseded duplicate attempts harmless.
pub struct PhaseSheet {
    inner: RefCell<SheetInner>,
}

fn ns(now: Duration) -> u64 {
    now.as_nanos() as u64
}

impl PhaseSheet {
    /// Open a sheet at `now`, charging time to `base` until the first
    /// transition.
    pub fn open(now: Duration, base: Phase) -> Rc<PhaseSheet> {
        let now_ns = ns(now);
        Rc::new(PhaseSheet {
            inner: RefCell::new(SheetInner {
                acc: [0; PHASE_COUNT],
                stack: vec![base],
                last_ns: now_ns,
                opened_ns: now_ns,
                open: true,
                suppressed: 0,
            }),
        })
    }

    fn accrue(inner: &mut SheetInner, now_ns: u64) {
        let dt = now_ns.saturating_sub(inner.last_ns);
        if let Some(&top) = inner.stack.last() {
            inner.acc[top.index()] += dt;
        }
        inner.last_ns = now_ns;
    }

    /// Push a nested phase: accrue the interval so far to the current phase,
    /// then start charging `phase`.
    pub fn enter(&self, now: Duration, phase: Phase) {
        let mut inner = self.inner.borrow_mut();
        if !inner.open {
            return;
        }
        Self::accrue(&mut inner, ns(now));
        if inner.suppressed > 0 || inner.stack.last().is_some_and(|p| p.is_opaque()) {
            inner.suppressed += 1;
        } else {
            inner.stack.push(phase);
        }
    }

    /// Pop the current nested phase, returning to the one below. The base
    /// phase is never popped; unbalanced exits are clamped there.
    pub fn exit(&self, now: Duration) {
        let mut inner = self.inner.borrow_mut();
        if !inner.open {
            return;
        }
        Self::accrue(&mut inner, ns(now));
        if inner.suppressed > 0 {
            inner.suppressed -= 1;
        } else if inner.stack.len() > 1 {
            inner.stack.pop();
        }
    }

    /// Retag the phase currently being charged without changing nesting
    /// depth. Used by the shared log to walk an append through
    /// `LogHop → BatchWait → Sequencer → Quorum` while the op sits in one
    /// logical `enter`/`exit` pair.
    pub fn switch(&self, now: Duration, phase: Phase) {
        let mut inner = self.inner.borrow_mut();
        if !inner.open || inner.suppressed > 0 {
            return;
        }
        Self::accrue(&mut inner, ns(now));
        if let Some(top) = inner.stack.last_mut() {
            *top = phase;
        }
    }

    /// Mark the start of a function attempt: if the sheet is at base depth
    /// (top-level invocation, not a child invoke), retag the base to
    /// [`Phase::Execution`] so the scheduling/recovery phase ends here.
    pub fn begin_attempt(&self, now: Duration) {
        let mut inner = self.inner.borrow_mut();
        if !inner.open {
            return;
        }
        Self::accrue(&mut inner, ns(now));
        if inner.stack.len() == 1 && inner.suppressed == 0 {
            inner.stack[0] = Phase::Execution;
        }
    }

    /// Collapse the stack back to a single base `phase`, discarding nesting.
    /// Called when an attempt dies (`NodeCrashed`): whatever phase the op
    /// crashed in keeps its accrual, and time now flows to `phase`
    /// (typically [`Phase::Recovery`]) until the next attempt begins.
    pub fn unwind(&self, now: Duration, phase: Phase) {
        let mut inner = self.inner.borrow_mut();
        if !inner.open {
            return;
        }
        Self::accrue(&mut inner, ns(now));
        inner.suppressed = 0;
        inner.stack.truncate(1);
        inner.stack[0] = phase;
    }

    /// Close the sheet at `now` and return the final accrual. Returns `None`
    /// if the sheet was already finished (e.g. by a racing duplicate).
    pub fn finish(&self, now: Duration) -> Option<Stamp> {
        let mut inner = self.inner.borrow_mut();
        if !inner.open {
            return None;
        }
        Self::accrue(&mut inner, ns(now));
        inner.open = false;
        Some(Stamp {
            phase_ns: inner.acc,
            total_ns: inner.last_ns - inner.opened_ns,
        })
    }

    /// Whether the sheet is still accruing.
    pub fn is_open(&self) -> bool {
        self.inner.borrow().open
    }

    /// Snapshot the accruals so far without closing the sheet (flight
    /// recorder dumps want in-flight state).
    pub fn snapshot(&self, now: Duration) -> Stamp {
        let inner = self.inner.borrow();
        let mut acc = inner.acc;
        if inner.open {
            if let Some(&top) = inner.stack.last() {
                acc[top.index()] += ns(now).saturating_sub(inner.last_ns);
            }
        }
        Stamp {
            phase_ns: acc,
            total_ns: ns(now).saturating_sub(inner.opened_ns),
        }
    }
}

/// One completed op's stamp, retained in a bounded ring for the flight
/// recorder and the determinism suite.
#[derive(Debug, Clone)]
pub struct StampRow {
    /// Completion order (0-based, deterministic).
    pub seq: u64,
    /// Virtual completion instant.
    pub at: Duration,
    /// The op's final accrual.
    pub stamp: Stamp,
}

impl StampRow {
    /// Deterministic single-line JSON: phases in taxonomy order, zero
    /// phases omitted.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"seq\":{},\"at_ns\":{},\"total_ns\":{},\"phases\":{{",
            self.seq,
            self.at.as_nanos(),
            self.stamp.total_ns
        );
        let mut first = true;
        for p in Phase::ALL {
            let v = self.stamp.phase_ns[p.index()];
            if v == 0 {
                continue;
            }
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&format!("\"{}\":{}", p.name(), v));
        }
        s.push_str("}}");
        s
    }
}

/// Per-phase percentile summary produced by [`Anatomy::waterfall`].
#[derive(Debug, Clone, Copy)]
pub struct PhaseStat {
    /// Which phase this row summarizes (`None` = end-to-end).
    pub phase: Option<Phase>,
    /// Ops that accrued nonzero time in this phase.
    pub count: u64,
    /// p50 over those ops, nanoseconds.
    pub p50_ns: u64,
    /// p95 over those ops, nanoseconds.
    pub p95_ns: u64,
    /// p99 over those ops, nanoseconds.
    pub p99_ns: u64,
    /// Exact total nanoseconds accrued to the phase across all ops.
    pub total_ns: u128,
}

const DEFAULT_ROW_CAPACITY: usize = 4096;

struct AnatomyInner {
    phase_hist: Vec<Histogram>,
    e2e_hist: Histogram,
    phase_total_ns: [u128; PHASE_COUNT],
    e2e_total_ns: u128,
    ops: u64,
    max_rel_err: f64,
    bindings: FxHashMap<u128, Rc<PhaseSheet>>,
    rows: VecDeque<StampRow>,
    rows_cap: usize,
    rows_dropped: u64,
    next_seq: u64,
}

/// Session-wide collector: per-phase HDR histograms, exact phase totals,
/// instance-id bindings (gateway → runtime → `Env` handoff, mirroring the
/// tracer), a substrate context cell, and a bounded ring of recent stamps.
pub struct Anatomy {
    inner: RefCell<AnatomyInner>,
    context: RefCell<Option<Rc<PhaseSheet>>>,
}

impl Anatomy {
    /// New collector retaining the default number of recent stamp rows.
    pub fn new() -> Rc<Anatomy> {
        Self::with_row_capacity(DEFAULT_ROW_CAPACITY)
    }

    /// New collector retaining at most `rows_cap` recent stamp rows.
    pub fn with_row_capacity(rows_cap: usize) -> Rc<Anatomy> {
        Rc::new(Anatomy {
            inner: RefCell::new(AnatomyInner {
                phase_hist: (0..PHASE_COUNT).map(|_| Histogram::new()).collect(),
                e2e_hist: Histogram::new(),
                phase_total_ns: [0; PHASE_COUNT],
                e2e_total_ns: 0,
                ops: 0,
                max_rel_err: 0.0,
                bindings: FxHashMap::default(),
                rows: VecDeque::new(),
                rows_cap: rows_cap.max(1),
                rows_dropped: 0,
                next_seq: 0,
            }),
            context: RefCell::new(None),
        })
    }

    /// Open a fresh sheet charging [`Phase::Admission`] from `now`.
    pub fn open_sheet(&self, now: Duration) -> Rc<PhaseSheet> {
        PhaseSheet::open(now, Phase::Admission)
    }

    /// Bind a sheet to an invocation instance id so the runtime and `Env`
    /// can recover it across the scheduling boundary.
    pub fn bind(&self, instance: u128, sheet: Rc<PhaseSheet>) {
        self.inner.borrow_mut().bindings.insert(instance, sheet);
    }

    /// Look up (and clone) the sheet bound to an instance id.
    pub fn binding(&self, instance: u128) -> Option<Rc<PhaseSheet>> {
        self.inner.borrow().bindings.get(&instance).cloned()
    }

    /// Drop a binding once the invocation has completed.
    pub fn unbind(&self, instance: u128) {
        self.inner.borrow_mut().bindings.remove(&instance);
    }

    /// Arm the substrate context: the next shared-log / KV op started on
    /// this task charges `sheet`. Call immediately before the substrate
    /// call, with no awaits in between (same discipline as the tracer).
    pub fn set_context(&self, sheet: Option<Rc<PhaseSheet>>) {
        *self.context.borrow_mut() = sheet;
    }

    /// Current substrate context, if any.
    pub fn context(&self) -> Option<Rc<PhaseSheet>> {
        self.context.borrow().clone()
    }

    /// Clear the substrate context (background tasks call this first).
    pub fn clear_context(&self) {
        *self.context.borrow_mut() = None;
    }

    /// Finish `sheet` at `now` and fold its accruals into the collector.
    /// No-op if the sheet was already finished.
    pub fn complete(&self, now: Duration, sheet: &PhaseSheet) {
        let Some(stamp) = sheet.finish(now) else {
            return;
        };
        let mut inner = self.inner.borrow_mut();
        for p in Phase::ALL {
            let v = stamp.phase_ns[p.index()];
            if v > 0 {
                inner.phase_hist[p.index()].record_ns(v);
                inner.phase_total_ns[p.index()] += u128::from(v);
            }
        }
        inner.e2e_hist.record_ns(stamp.total_ns);
        inner.e2e_total_ns += u128::from(stamp.total_ns);
        inner.ops += 1;
        if stamp.total_ns > 0 {
            let err = (stamp.sum_ns() as f64 - stamp.total_ns as f64).abs()
                / stamp.total_ns as f64;
            if err > inner.max_rel_err {
                inner.max_rel_err = err;
            }
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.rows.len() == inner.rows_cap {
            inner.rows.pop_front();
            inner.rows_dropped += 1;
        }
        inner.rows.push_back(StampRow { seq, at: now, stamp });
    }

    /// Close `sheet` without recording it (errored or unmeasured requests).
    pub fn abandon(&self, now: Duration, sheet: &PhaseSheet) {
        let _ = sheet.finish(now);
    }

    /// Number of completed ops folded in so far.
    pub fn ops(&self) -> u64 {
        self.inner.borrow().ops
    }

    /// Worst per-op `|sum(phases) − e2e| / e2e` observed. Exactly `0.0`
    /// for single-attempt-chain ops by construction.
    pub fn max_rel_err(&self) -> f64 {
        self.inner.borrow().max_rel_err
    }

    /// Exact per-phase nanosecond totals across all completed ops.
    pub fn phase_totals_ns(&self) -> [u128; PHASE_COUNT] {
        self.inner.borrow().phase_total_ns
    }

    /// Exact end-to-end nanosecond total across all completed ops.
    pub fn e2e_total_ns(&self) -> u128 {
        self.inner.borrow().e2e_total_ns
    }

    /// Per-phase p50/p95/p99 waterfall (phases with zero ops omitted),
    /// in taxonomy order.
    pub fn waterfall(&self) -> Vec<PhaseStat> {
        let inner = self.inner.borrow();
        Phase::ALL
            .iter()
            .filter_map(|&p| {
                let h = &inner.phase_hist[p.index()];
                let count = h.count();
                if count == 0 {
                    return None;
                }
                Some(PhaseStat {
                    phase: Some(p),
                    count,
                    p50_ns: h.quantile_ns(0.50).unwrap_or(0),
                    p95_ns: h.quantile_ns(0.95).unwrap_or(0),
                    p99_ns: h.quantile_ns(0.99).unwrap_or(0),
                    total_ns: inner.phase_total_ns[p.index()],
                })
            })
            .collect()
    }

    /// End-to-end summary row (`phase: None`), or `None` if no ops finished.
    pub fn e2e_stat(&self) -> Option<PhaseStat> {
        let inner = self.inner.borrow();
        let h = &inner.e2e_hist;
        if h.count() == 0 {
            return None;
        }
        Some(PhaseStat {
            phase: None,
            count: h.count(),
            p50_ns: h.quantile_ns(0.50).unwrap_or(0),
            p95_ns: h.quantile_ns(0.95).unwrap_or(0),
            p99_ns: h.quantile_ns(0.99).unwrap_or(0),
            total_ns: inner.e2e_total_ns,
        })
    }

    /// Clone out the retained recent stamp rows, oldest first.
    pub fn recent_rows(&self) -> Vec<StampRow> {
        self.inner.borrow().rows.iter().cloned().collect()
    }

    /// How many stamp rows were evicted from the ring.
    pub fn rows_dropped(&self) -> u64 {
        self.inner.borrow().rows_dropped
    }

    /// Deterministic JSONL of the retained stamp rows (one op per line).
    /// Two seeded runs produce byte-identical output.
    pub fn rows_jsonl(&self) -> String {
        let inner = self.inner.borrow();
        let mut s = String::new();
        for row in &inner.rows {
            s.push_str(&row.to_json());
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn sheet_partitions_lifetime_exactly() {
        let sheet = PhaseSheet::open(ms(0), Phase::Admission);
        sheet.switch(ms(2), Phase::Dispatch); // 2ms admission
        sheet.begin_attempt(ms(5)); // 3ms dispatch
        sheet.enter(ms(6), Phase::ProtoWrite); // 1ms execution
        sheet.enter(ms(7), Phase::LogHop); // 1ms proto_write
        sheet.switch(ms(8), Phase::Sequencer); // 1ms log_hop
        sheet.switch(ms(9), Phase::Quorum); // 1ms sequencer
        sheet.exit(ms(11)); // 2ms quorum
        sheet.exit(ms(12)); // 1ms proto_write
        let stamp = sheet.finish(ms(14)).unwrap(); // 2ms execution
        assert_eq!(stamp.total_ns, 14_000_000);
        assert_eq!(stamp.sum_ns(), stamp.total_ns);
        let get = |p: Phase| stamp.phase_ns[p.index()];
        assert_eq!(get(Phase::Admission), 2_000_000);
        assert_eq!(get(Phase::Dispatch), 3_000_000);
        assert_eq!(get(Phase::Execution), 3_000_000);
        assert_eq!(get(Phase::ProtoWrite), 2_000_000);
        assert_eq!(get(Phase::LogHop), 1_000_000);
        assert_eq!(get(Phase::Sequencer), 1_000_000);
        assert_eq!(get(Phase::Quorum), 2_000_000);
    }

    #[test]
    fn finished_sheet_ignores_all_ops() {
        let sheet = PhaseSheet::open(ms(0), Phase::Admission);
        let stamp = sheet.finish(ms(5)).unwrap();
        assert_eq!(stamp.total_ns, 5_000_000);
        sheet.enter(ms(6), Phase::Execution);
        sheet.switch(ms(7), Phase::Quorum);
        sheet.exit(ms(8));
        assert!(sheet.finish(ms(9)).is_none());
        assert!(!sheet.is_open());
    }

    #[test]
    fn opaque_replay_swallows_nested_stamps() {
        let sheet = PhaseSheet::open(ms(0), Phase::Execution);
        sheet.enter(ms(1), Phase::Replay);
        sheet.enter(ms(2), Phase::LogRead); // swallowed
        sheet.switch(ms(3), Phase::Sequencer); // ignored
        sheet.exit(ms(4)); // closes the swallowed enter
        sheet.exit(ms(6)); // closes replay
        let stamp = sheet.finish(ms(7)).unwrap();
        assert_eq!(stamp.phase_ns[Phase::Replay.index()], 5_000_000);
        assert_eq!(stamp.phase_ns[Phase::LogRead.index()], 0);
        assert_eq!(stamp.phase_ns[Phase::Sequencer.index()], 0);
        assert_eq!(stamp.phase_ns[Phase::Execution.index()], 2_000_000);
        assert_eq!(stamp.sum_ns(), stamp.total_ns);
    }

    #[test]
    fn unwind_redirects_to_recovery() {
        let sheet = PhaseSheet::open(ms(0), Phase::Dispatch);
        sheet.begin_attempt(ms(1));
        sheet.enter(ms(2), Phase::ProtoWrite);
        sheet.enter(ms(3), Phase::Quorum);
        sheet.unwind(ms(4), Phase::Recovery); // crash mid-append
        sheet.begin_attempt(ms(9)); // 5ms recovery
        let stamp = sheet.finish(ms(10)).unwrap();
        assert_eq!(stamp.phase_ns[Phase::Recovery.index()], 5_000_000);
        assert_eq!(stamp.phase_ns[Phase::Quorum.index()], 1_000_000);
        assert_eq!(stamp.sum_ns(), stamp.total_ns);
    }

    #[test]
    fn anatomy_collects_and_reconciles() {
        let anatomy = Anatomy::new();
        for i in 0..10u64 {
            let sheet = anatomy.open_sheet(ms(i * 100));
            sheet.switch(ms(i * 100 + 1), Phase::Execution);
            sheet.enter(ms(i * 100 + 2), Phase::StoreIo);
            sheet.exit(ms(i * 100 + 4));
            anatomy.complete(ms(i * 100 + 5), &sheet);
        }
        assert_eq!(anatomy.ops(), 10);
        assert_eq!(anatomy.max_rel_err(), 0.0);
        let wf = anatomy.waterfall();
        assert!(wf.iter().any(|s| s.phase == Some(Phase::StoreIo)));
        let e2e = anatomy.e2e_stat().unwrap();
        assert_eq!(e2e.count, 10);
        assert_eq!(e2e.total_ns, 10 * 5_000_000);
        let sum: u128 = anatomy.phase_totals_ns().iter().sum();
        assert_eq!(sum, anatomy.e2e_total_ns());
    }

    #[test]
    fn rows_jsonl_is_deterministic_and_bounded() {
        let run = || {
            let anatomy = Anatomy::with_row_capacity(4);
            for i in 0..6u64 {
                let sheet = anatomy.open_sheet(ms(i));
                sheet.switch(ms(i + 1), Phase::Execution);
                anatomy.complete(ms(i + 2), &sheet);
            }
            (anatomy.rows_jsonl(), anatomy.rows_dropped())
        };
        let (a, dropped) = run();
        let (b, _) = run();
        assert_eq!(a, b);
        assert_eq!(dropped, 2);
        assert_eq!(a.lines().count(), 4);
        assert!(a.lines().next().unwrap().starts_with("{\"seq\":2,"));
    }

    #[test]
    fn bindings_round_trip() {
        let anatomy = Anatomy::new();
        let sheet = anatomy.open_sheet(ms(0));
        anatomy.bind(42, sheet.clone());
        assert!(anatomy.binding(42).is_some());
        assert!(anatomy.binding(7).is_none());
        anatomy.unbind(42);
        assert!(anatomy.binding(42).is_none());
        anatomy.set_context(Some(sheet));
        assert!(anatomy.context().is_some());
        anatomy.clear_context();
        assert!(anatomy.context().is_none());
    }
}
