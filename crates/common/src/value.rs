//! The dynamic payload type exchanged between serverless functions.
//!
//! Real FaaS platforms pass JSON between functions; in this in-process
//! reproduction there is no serialization boundary, so [`Value`] is a plain
//! enum with the same shape as JSON. The type also knows its approximate
//! encoded size so that the storage-overhead experiments (§6.3) can account
//! for bytes the way DynamoDB would.

use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

use crate::bytes::SharedBytes;

/// A JSON-like dynamic value.
///
/// Every non-scalar variant is reference-counted: values cross the
/// simulated serialization boundary many times per request (runtime retry
/// loop, init-record payload, replay adoption), and a real platform would
/// pass serialized bytes by reference. Cloning a `Value` is therefore O(1)
/// for *all* variants — strings and byte buffers included — so the
/// `Payload: Clone` contract on log records is a pointer bump end to end
/// (DESIGN.md §15). Logical equality and accounting are unaffected.
#[derive(Clone, PartialEq, Default)]
pub enum Value {
    /// Absent / null.
    #[default]
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string (refcounted; cloning shares the buffer).
    Str(Rc<str>),
    /// Materialized byte payload behind a shared buffer ([`SharedBytes`]):
    /// cloning bumps a refcount, subslices share storage. This is the
    /// zero-copy carrier for values whose bytes matter (cache handoff,
    /// replay adoption).
    Bytes(SharedBytes),
    /// Opaque byte payload of a given length. The bytes themselves are not
    /// materialized — workloads only care about the *size* of values (the
    /// storage experiments vary object size between 256 B and 1 KB), so a
    /// blob carries its length and a small content fingerprint.
    Blob {
        /// Logical length in bytes.
        len: usize,
        /// Content fingerprint, so distinct writes remain distinguishable.
        fingerprint: u64,
    },
    /// Ordered list.
    List(Rc<Vec<Value>>),
    /// String-keyed map (ordered for deterministic iteration).
    Map(Rc<BTreeMap<String, Value>>),
}

impl Value {
    /// Builds a blob of `len` bytes whose content is identified by
    /// `fingerprint`.
    #[must_use]
    pub fn blob(len: usize, fingerprint: u64) -> Value {
        Value::Blob { len, fingerprint }
    }

    /// Builds a map value from key/value pairs.
    #[must_use]
    pub fn map<const N: usize>(entries: [(&str, Value); N]) -> Value {
        Value::Map(Rc::new(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        ))
    }

    /// Builds a list value.
    #[must_use]
    pub fn list(items: Vec<Value>) -> Value {
        Value::List(Rc::new(items))
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(Rc::from(s.into()))
    }

    /// Builds a byte-buffer value sharing `bytes`' storage.
    #[must_use]
    pub fn bytes(bytes: SharedBytes) -> Value {
        Value::Bytes(bytes)
    }

    /// Approximate encoded size in bytes, used for storage accounting.
    ///
    /// Refcounted variants charge their *logical* length — the §6.3
    /// storage experiments count payload bytes once per record, however
    /// many views share the buffer in process.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 1,
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Str(s) => s.len(),
            Value::Bytes(b) => b.len(),
            Value::Blob { len, .. } => *len,
            Value::List(items) => 2 + items.iter().map(Value::size_bytes).sum::<usize>(),
            Value::Map(entries) => {
                2 + entries
                    .iter()
                    .map(|(k, v)| k.len() + v.size_bytes())
                    .sum::<usize>()
            }
        }
    }

    /// Returns the integer payload, if this is an `Int`.
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a `Str`.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the byte-buffer payload, if this is a `Bytes`.
    #[must_use]
    pub fn as_bytes(&self) -> Option<&SharedBytes> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Returns the list payload, if this is a `List`.
    #[must_use]
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(items) => Some(&items[..]),
            _ => None,
        }
    }

    /// Returns the map payload, if this is a `Map`.
    #[must_use]
    pub fn as_map(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Map(entries) => Some(&**entries),
            _ => None,
        }
    }

    /// Looks up a map field.
    #[must_use]
    pub fn get(&self, field: &str) -> Option<&Value> {
        self.as_map().and_then(|m| m.get(field))
    }

    /// True if this is `Null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// A stable 64-bit fingerprint of the value, used by the consistency
    /// checkers to compare read results without cloning whole payloads.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        fn mix(h: u64, x: u64) -> u64 {
            (h ^ x).wrapping_mul(0x0000_0100_0000_01b3)
        }
        match self {
            Value::Null => 0x4e55_4c4c,
            Value::Bool(b) => mix(0xb001, u64::from(*b)),
            Value::Int(i) => mix(0x1237, *i as u64),
            Value::Float(f) => mix(0xf10a, f.to_bits()),
            Value::Str(s) => mix(0x5712, crate::ids::fnv1a(s.as_bytes())),
            Value::Bytes(b) => mix(0xb17e, b.fingerprint()),
            Value::Blob { len, fingerprint } => mix(mix(0xb10b, *len as u64), *fingerprint),
            Value::List(items) => items
                .iter()
                .fold(0x1157_u64, |h, v| mix(h, v.fingerprint())),
            Value::Map(entries) => entries.iter().fold(0x3a90_u64, |h, (k, v)| {
                mix(mix(h, crate::ids::fnv1a(k.as_bytes())), v.fingerprint())
            }),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => write!(f, "{b:?}"),
            Value::Blob { len, fingerprint } => write!(f, "blob[{len}B;{fingerprint:x}]"),
            Value::List(items) => f.debug_list().entries(items.iter()).finish(),
            Value::Map(entries) => f.debug_map().entries(entries.iter()).finish(),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(Rc::from(s))
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(Rc::from(s))
    }
}

impl From<SharedBytes> for Value {
    fn from(b: SharedBytes) -> Value {
        Value::Bytes(b)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Value {
        Value::list(items.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_account_for_contents() {
        assert_eq!(Value::Int(7).size_bytes(), 8);
        assert_eq!(Value::blob(256, 0).size_bytes(), 256);
        assert_eq!(Value::str("abcd").size_bytes(), 4);
        let m = Value::map([("k", Value::blob(100, 1))]);
        assert_eq!(m.size_bytes(), 2 + 1 + 100);
    }

    #[test]
    fn fingerprints_distinguish_contents() {
        assert_ne!(Value::Int(1).fingerprint(), Value::Int(2).fingerprint());
        assert_ne!(
            Value::blob(10, 1).fingerprint(),
            Value::blob(10, 2).fingerprint()
        );
        assert_eq!(
            Value::map([("a", Value::Int(1))]).fingerprint(),
            Value::map([("a", Value::Int(1))]).fingerprint()
        );
        assert_ne!(Value::Null.fingerprint(), Value::Bool(false).fingerprint());
    }

    #[test]
    fn bytes_values_share_storage_and_count_logical_size() {
        let buf = SharedBytes::copy_from(&[7u8; 300]);
        let v = Value::bytes(buf.clone());
        assert_eq!(v.size_bytes(), 300);
        let copy = v.clone();
        assert_eq!(copy, v);
        // Clone of a Bytes value is a refcount bump on the same buffer.
        assert!(copy.as_bytes().unwrap().ptr_eq(&buf));
        // A narrowed view charges its own logical length.
        assert_eq!(Value::bytes(buf.slice(0, 50)).size_bytes(), 50);
    }

    #[test]
    fn str_clone_shares_the_buffer() {
        let v = Value::str("shared string payload");
        let copy = v.clone();
        let (Value::Str(a), Value::Str(b)) = (&v, &copy) else {
            panic!("expected Str");
        };
        assert!(Rc::ptr_eq(a, b));
        assert_eq!(v.fingerprint(), copy.fingerprint());
    }

    #[test]
    fn accessors() {
        let v = Value::map([("n", Value::Int(3)), ("s", Value::str("x"))]);
        assert_eq!(v.get("n").and_then(Value::as_int), Some(3));
        assert_eq!(v.get("s").and_then(Value::as_str), Some("x"));
        assert!(v.get("missing").is_none());
        assert!(Value::Null.is_null());
    }
}
