//! Error types shared across the workspace.

use std::fmt;

use crate::ids::{Key, NodeId, SeqNum, StepNum};

/// Result alias used throughout the workspace.
pub type HmResult<T> = Result<T, HmError>;

/// Errors surfaced by the substrates and protocols.
///
/// `Crashed` is special: it models an injected crash of a function instance
/// and is propagated up through the SSF body so the runtime can observe the
/// "failure" and re-execute — the in-process equivalent of a process dying
/// mid-function.
#[derive(Clone, PartialEq, Eq)]
pub enum HmError {
    /// The fault injector killed this function instance. Carries the
    /// instance's crash-point index for diagnostics.
    Crashed {
        /// Which crash point fired.
        point: u32,
    },
    /// The function node executing this attempt was killed (a chaos
    /// campaign's whole-node crash): every in-flight attempt on the node
    /// is torn down at the crash instant. Retried like [`HmError::Crashed`],
    /// re-dispatched to a surviving node.
    NodeCrashed {
        /// The node that went down.
        node: NodeId,
    },
    /// A conditional log append lost the race against a peer instance
    /// (§5.1). Carries the seqnum of the record that won at the expected
    /// offset so the loser can adopt it.
    CondAppendConflict {
        /// Seqnum of the record already at the expected offset.
        winner: SeqNum,
        /// The step at which the conflict occurred.
        step: StepNum,
    },
    /// A read targeted an object version that does not exist in the store.
    /// Under correct protocol operation this is unreachable (Halfmoon-read
    /// commits versions to the store before exposing them in the log, §4.1);
    /// seeing it in a test means a protocol invariant broke.
    MissingVersion {
        /// The object key.
        key: Key,
    },
    /// A read targeted a key that has never been written and has no
    /// initial value.
    MissingKey {
        /// The object key.
        key: Key,
    },
    /// An invoked function name was not registered with the runtime.
    UnknownFunction {
        /// The requested function name.
        name: String,
    },
    /// An SSF body returned a malformed payload (workload-level bug).
    BadInput {
        /// Human-readable description.
        what: String,
    },
    /// The simulation was asked to do something outside its configuration,
    /// e.g. invoking with a protocol the experiment did not set up.
    Config {
        /// Human-readable description.
        what: String,
    },
}

impl HmError {
    /// Convenience constructor for configuration errors.
    pub fn config(what: impl Into<String>) -> HmError {
        HmError::Config { what: what.into() }
    }

    /// Convenience constructor for bad-input errors.
    pub fn bad_input(what: impl Into<String>) -> HmError {
        HmError::BadInput { what: what.into() }
    }

    /// True if this error is an injected crash — of the instance or of
    /// its whole node (the runtime retries these).
    #[must_use]
    pub fn is_crash(&self) -> bool {
        matches!(
            self,
            HmError::Crashed { .. } | HmError::NodeCrashed { .. }
        )
    }
}

impl fmt::Debug for HmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for HmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HmError::Crashed { point } => write!(f, "injected crash at point {point}"),
            HmError::NodeCrashed { node } => {
                write!(f, "function node {node:?} crashed under this attempt")
            }
            HmError::CondAppendConflict { winner, step } => {
                write!(
                    f,
                    "conditional append conflict at {step:?}; winner {winner:?}"
                )
            }
            HmError::MissingVersion { key } => write!(f, "missing object version for {key:?}"),
            HmError::MissingKey { key } => write!(f, "missing key {key:?}"),
            HmError::UnknownFunction { name } => write!(f, "unknown function {name:?}"),
            HmError::BadInput { what } => write!(f, "bad input: {what}"),
            HmError::Config { what } => write!(f, "configuration error: {what}"),
        }
    }
}

impl std::error::Error for HmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_detection() {
        assert!(HmError::Crashed { point: 3 }.is_crash());
        assert!(HmError::NodeCrashed { node: NodeId(2) }.is_crash());
        assert!(!HmError::config("x").is_crash());
    }

    #[test]
    fn display_is_informative() {
        let e = HmError::CondAppendConflict {
            winner: SeqNum(9),
            step: StepNum(2),
        };
        let s = e.to_string();
        assert!(s.contains("sn9"));
        assert!(s.contains("step2"));
    }
}
