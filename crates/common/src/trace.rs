//! Deterministic causal tracing and a metrics registry.
//!
//! The simulator's experiments (DESIGN.md §11) reason about *why* each
//! protocol wins: which log/store round-trips sit on the critical path of
//! an invocation, where queueing accumulates, what the GC trims. End-of-run
//! aggregates cannot answer those questions, so this module provides a
//! structured, causally-ordered event log:
//!
//! - A [`Tracer`] collects [`TraceEvent`]s into bounded per-lane ring
//!   buffers. Every event is stamped with *virtual* time and a global
//!   sequence number, so a seeded simulation produces a byte-identical
//!   trace on every run.
//! - Spans form a tree: the gateway opens a `request` span per stamped
//!   [`TraceId`], the runtime an `invocation` span, the environment an
//!   `attempt` span per crash-retry attempt, each SSF op (`read`, `write`,
//!   `invoke`, …) a child span, and the substrate (shared log, KV store)
//!   leaf spans for each round-trip.
//! - Two exporters: Chrome `trace_event` JSON ([`Tracer::export_chrome_json`],
//!   loadable in Perfetto / `chrome://tracing`, one lane per function node
//!   plus sequencer, storage, gateway, and GC lanes) and a compact JSONL
//!   stream ([`Tracer::export_jsonl`]).
//! - [`Tracer::critical_path`] answers the paper's op-count claims per
//!   invocation: for each op span of a trace, how many log appends / log
//!   reads / store round-trips its subtree contains.
//! - [`MetricsRegistry`] lets components register named counters, gauges,
//!   and histograms and snapshot them as a time series at a configurable
//!   virtual-time interval.
//!
//! # Determinism contract
//!
//! The tracer draws no randomness, spawns no tasks, and sleeps never: it is
//! pure bookkeeping on the caller's stack, so enabling tracing cannot
//! perturb a simulation's interleaving. All timestamps come from the
//! virtual clock (plain [`Duration`]s passed by the caller — this module
//! has no simulator dependency).
//!
//! # Attribution contract
//!
//! Substrate calls attribute their spans through a context cell
//! ([`Tracer::set_context`]) holding the currently executing
//! `(trace, span)`. On the single-threaded executor this is race-free as
//! long as every traced substrate call *immediately* follows the context
//! set with no `await` in between: the callee captures the context at
//! entry, synchronously within the same task poll.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt;
use std::fmt::Write as _;
use std::rc::Rc;
use std::time::Duration;

use crate::collections::FxHashMap;

/// Identifies one end-to-end request through the system. `TraceId(0)` is
/// reserved for unattributed (background) work such as GC cycles.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The unattributed trace: background work not tied to any request.
    pub const NONE: TraceId = TraceId(0);
}

impl fmt::Debug for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tr{}", self.0)
    }
}

/// Identifies one span (a named interval) within the tracer. `SpanId(0)`
/// means "no parent".
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The absent parent: roots of the span tree carry this.
    pub const NONE: SpanId = SpanId(0);
}

impl fmt::Debug for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sp{}", self.0)
    }
}

/// The swim-lane an event renders in: one per function node, one per log
/// shard's sequencer, plus shared lanes for the storage tier, the gateway,
/// and the GC.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Lane {
    /// A function node's lane (`NodeId.0`).
    Node(u32),
    /// One log shard's sequencer (`ShardId.0`): that shard's ordering
    /// decisions land here. Shard 0 is the only sequencer in a
    /// single-shard deployment.
    Sequencer(u8),
    /// The storage tier (log storage + KV store round-trips).
    Storage,
    /// The gateway (request arrival/completion).
    Gateway,
    /// The garbage collector.
    Gc,
}

/// Chrome-trace `tid` layout: node lanes use their node id directly and
/// must stay below [`SEQUENCER_TID_BASE`]; sequencer lanes occupy
/// `SEQUENCER_TID_BASE + shard` (one per possible `u8` shard id); the
/// remaining shared lanes start at 2048.
const SEQUENCER_TID_BASE: u32 = 1024;
const STORAGE_TID: u32 = 2048;
const GATEWAY_TID: u32 = 2049;
const GC_TID: u32 = 2050;

impl Lane {
    /// Stable integer id used as the Chrome-trace `tid` and ring-buffer key.
    #[must_use]
    pub fn tid(self) -> u32 {
        match self {
            Lane::Node(n) => {
                debug_assert!(n < SEQUENCER_TID_BASE, "node id collides with shared lanes");
                n
            }
            Lane::Sequencer(shard) => SEQUENCER_TID_BASE + u32::from(shard),
            Lane::Storage => STORAGE_TID,
            Lane::Gateway => GATEWAY_TID,
            Lane::Gc => GC_TID,
        }
    }

    /// Human-readable lane name for the exporters.
    #[must_use]
    pub fn label(tid: u32) -> String {
        match tid {
            STORAGE_TID => "storage".to_string(),
            GATEWAY_TID => "gateway".to_string(),
            GC_TID => "gc".to_string(),
            SEQUENCER_TID_BASE => "sequencer".to_string(),
            n if (SEQUENCER_TID_BASE..SEQUENCER_TID_BASE + 256).contains(&n) => {
                format!("sequencer{}", n - SEQUENCER_TID_BASE)
            }
            n => format!("node{n}"),
        }
    }

    /// Chrome-trace process id for a lane tid: lanes are grouped into
    /// processes so `chrome://tracing` shows named sections instead of a
    /// flat wall of raw tids. Function-node lanes are pid 0, sequencer
    /// lanes (tids 1024+s) pid 1, and the shared substrate lanes
    /// (storage/gateway/gc, tids 2048+) pid 2.
    #[must_use]
    pub fn pid(tid: u32) -> u32 {
        match tid {
            n if n < SEQUENCER_TID_BASE => 0,
            n if (SEQUENCER_TID_BASE..SEQUENCER_TID_BASE + 256).contains(&n) => 1,
            _ => 2,
        }
    }

    /// Human label for a Chrome-trace process id (see [`Lane::pid`]).
    #[must_use]
    pub fn process_label(pid: u32) -> &'static str {
        match pid {
            0 => "function nodes",
            1 => "shared-log sequencers",
            _ => "substrate (storage/gateway/gc)",
        }
    }
}

/// Event phase, mirroring the Chrome trace_event vocabulary.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Span start.
    Begin,
    /// Span end.
    End,
    /// A zero-duration marker (cache hit, sequencer decision, crash).
    Instant,
}

impl Phase {
    pub(crate) fn code(self) -> char {
        match self {
            Phase::Begin => 'B',
            Phase::End => 'E',
            Phase::Instant => 'I',
        }
    }
}

/// One recorded event. `seq` is a global, gap-free-at-recording counter
/// that totally orders events across lanes (ring overflow may later drop
/// the oldest events of a lane).
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Global sequence number: the deterministic total order.
    pub seq: u64,
    /// Virtual time of the event.
    pub at: Duration,
    /// Lane (ring buffer) the event was recorded on.
    pub lane: u32,
    /// Owning trace; [`TraceId::NONE`] for background work.
    pub trace: TraceId,
    /// The span this event begins/ends, or the instant's own id (0).
    pub span: SpanId,
    /// Parent span at recording time.
    pub parent: SpanId,
    /// Begin / End / Instant.
    pub phase: Phase,
    /// Static event name (span or marker kind).
    pub name: &'static str,
    /// Free-form annotation (seqnum, conflict winner, bytes freed, …).
    pub detail: String,
}

/// A bounded per-lane ring: oldest events drop first, with a drop count so
/// exports can say what is missing.
struct LaneRing {
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

struct TracerInner {
    capacity_per_lane: usize,
    next_trace: u64,
    next_span: u64,
    next_seq: u64,
    lanes: FxHashMap<u32, LaneRing>,
    /// instance id → (trace, parent span); how identity crosses the
    /// gateway → runtime → environment boundary.
    bindings: FxHashMap<u128, (TraceId, SpanId)>,
}

/// The trace collector. Create with [`Tracer::new`], share via `Rc`, and
/// install into a `Client` (which threads it through the shared log and the
/// KV store). All methods take `&self`; interior mutability keeps call
/// sites free of borrow gymnastics.
pub struct Tracer {
    inner: RefCell<TracerInner>,
    /// Currently executing `(trace, span)` for substrate attribution.
    context: Cell<(TraceId, SpanId)>,
}

/// Default per-lane ring capacity (events). At the calibrated latencies a
/// traced invocation emits ~20 events, so 64 Ki events per lane hold
/// thousands of invocations before the oldest drop.
pub const DEFAULT_RING_CAPACITY: usize = 64 * 1024;

impl Tracer {
    /// A tracer with the default per-lane ring capacity.
    #[must_use]
    pub fn new() -> Rc<Tracer> {
        Tracer::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// A tracer whose per-lane rings hold at most `capacity_per_lane`
    /// events (minimum 8; oldest events drop beyond that).
    #[must_use]
    pub fn with_capacity(capacity_per_lane: usize) -> Rc<Tracer> {
        Rc::new(Tracer {
            inner: RefCell::new(TracerInner {
                capacity_per_lane: capacity_per_lane.max(8),
                next_trace: 1,
                next_span: 1,
                next_seq: 0,
                lanes: FxHashMap::default(),
                bindings: FxHashMap::default(),
            }),
            context: Cell::new((TraceId::NONE, SpanId::NONE)),
        })
    }

    /// Allocates a fresh trace id (the gateway calls this per request).
    pub fn new_trace(&self) -> TraceId {
        let mut inner = self.inner.borrow_mut();
        let id = TraceId(inner.next_trace);
        inner.next_trace += 1;
        id
    }

    /// Associates an instance id with a `(trace, parent span)` so the
    /// environment constructed for that instance can attach its attempt
    /// spans to the right place in the tree.
    pub fn bind(&self, instance: u128, trace: TraceId, parent: SpanId) {
        self.inner.borrow_mut().bindings.insert(instance, (trace, parent));
    }

    /// Looks up the binding installed by [`Tracer::bind`].
    #[must_use]
    pub fn binding(&self, instance: u128) -> Option<(TraceId, SpanId)> {
        self.inner.borrow().bindings.get(&instance).copied()
    }

    /// Sets the substrate-attribution context. Must immediately precede the
    /// substrate call it attributes (no `await` in between).
    pub fn set_context(&self, trace: TraceId, span: SpanId) {
        self.context.set((trace, span));
    }

    /// Clears the attribution context (background tasks call this first).
    pub fn clear_context(&self) {
        self.context.set((TraceId::NONE, SpanId::NONE));
    }

    /// The current attribution context.
    #[must_use]
    pub fn context(&self) -> (TraceId, SpanId) {
        self.context.get()
    }

    fn push(&self, lane: Lane, event_of: impl FnOnce(u64) -> TraceEvent) {
        let mut inner = self.inner.borrow_mut();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let cap = inner.capacity_per_lane;
        let ring = inner.lanes.entry(lane.tid()).or_insert_with(|| LaneRing {
            events: VecDeque::new(),
            dropped: 0,
        });
        if ring.events.len() >= cap {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(event_of(seq));
    }

    /// Opens a span and returns its id. `detail` annotates the Begin event.
    pub fn span_begin(
        &self,
        lane: Lane,
        now: Duration,
        trace: TraceId,
        parent: SpanId,
        name: &'static str,
        detail: String,
    ) -> SpanId {
        let span = {
            let mut inner = self.inner.borrow_mut();
            let id = SpanId(inner.next_span);
            inner.next_span += 1;
            id
        };
        self.push(lane, |seq| TraceEvent {
            seq,
            at: now,
            lane: lane.tid(),
            trace,
            span,
            parent,
            phase: Phase::Begin,
            name,
            detail,
        });
        span
    }

    /// Closes a span opened by [`Tracer::span_begin`]. The End must be
    /// recorded on the same lane as the Begin for the exporters to pair
    /// them.
    pub fn span_end(&self, lane: Lane, now: Duration, trace: TraceId, span: SpanId) {
        self.push(lane, |seq| TraceEvent {
            seq,
            at: now,
            lane: lane.tid(),
            trace,
            span,
            parent: SpanId::NONE,
            phase: Phase::End,
            name: "",
            detail: String::new(),
        });
    }

    /// Records a zero-duration marker under `parent`.
    pub fn instant(
        &self,
        lane: Lane,
        now: Duration,
        trace: TraceId,
        parent: SpanId,
        name: &'static str,
        detail: String,
    ) {
        self.push(lane, |seq| TraceEvent {
            seq,
            at: now,
            lane: lane.tid(),
            trace,
            span: SpanId::NONE,
            parent,
            phase: Phase::Instant,
            name,
            detail,
        });
    }

    /// Total events recorded (including any later dropped by ring bounds).
    #[must_use]
    pub fn events_recorded(&self) -> u64 {
        self.inner.borrow().next_seq
    }

    /// Events dropped across all lanes due to ring bounds.
    #[must_use]
    pub fn events_dropped(&self) -> u64 {
        self.inner.borrow().lanes.values().map(|r| r.dropped).sum()
    }

    /// All retained events, across lanes, in global `seq` order.
    fn merged_events(&self) -> Vec<TraceEvent> {
        let inner = self.inner.borrow();
        let mut all: Vec<TraceEvent> = inner
            .lanes
            .values()
            .flat_map(|r| r.events.iter().cloned())
            .collect();
        all.sort_by_key(|e| e.seq);
        all
    }

    /// The most recent `per_lane` events from each lane, merged into global
    /// `seq` order. The flight recorder uses this to dump a bounded tail of
    /// activity around an incident without draining the full rings.
    #[must_use]
    pub fn recent_events(&self, per_lane: usize) -> Vec<TraceEvent> {
        let inner = self.inner.borrow();
        let mut all: Vec<TraceEvent> = inner
            .lanes
            .values()
            .flat_map(|r| {
                let skip = r.events.len().saturating_sub(per_lane);
                r.events.iter().skip(skip).cloned()
            })
            .collect();
        all.sort_by_key(|e| e.seq);
        all
    }

    /// Lane tids in ascending order (deterministic export order).
    fn lane_tids(&self) -> Vec<u32> {
        let inner = self.inner.borrow();
        let mut tids: Vec<u32> = inner.lanes.keys().copied().collect();
        tids.sort_unstable();
        tids
    }

    /// Exports the retained events as Chrome `trace_event` JSON (the
    /// "JSON Array Format" with a `traceEvents` wrapper), loadable in
    /// Perfetto or `chrome://tracing`. Spans become `"X"` complete events;
    /// instants become `"i"` events; lanes are named via `thread_name`
    /// metadata. Timestamps are virtual-time microseconds with nanosecond
    /// decimals.
    #[must_use]
    pub fn export_chrome_json(&self) -> String {
        let events = self.merged_events();
        let horizon = events.iter().map(|e| e.at).max().unwrap_or(Duration::ZERO);
        // Pair Begin/End by span id. Span ids are unique, so a linear scan
        // into a map suffices; an unmatched Begin (still open, or its End
        // dropped) extends to the trace horizon.
        let mut ends: FxHashMap<u64, Duration> = FxHashMap::default();
        for e in &events {
            if e.phase == Phase::End {
                ends.entry(e.span.0).or_insert(e.at);
            }
        }
        let mut out = String::with_capacity(events.len() * 96 + 1024);
        out.push_str("{\"traceEvents\":[\n");
        let mut first = true;
        let mut emit = |line: String, out: &mut String| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&line);
        };
        let tids = self.lane_tids();
        let mut pids: Vec<u32> = tids.iter().map(|&t| Lane::pid(t)).collect();
        pids.sort_unstable();
        pids.dedup();
        for pid in pids {
            emit(
                format!(
                    "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    Lane::process_label(pid)
                ),
                &mut out,
            );
        }
        for tid in tids {
            emit(
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{tid},\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    Lane::pid(tid),
                    Lane::label(tid)
                ),
                &mut out,
            );
        }
        for e in &events {
            match e.phase {
                Phase::Begin => {
                    let end = ends.get(&e.span.0).copied().unwrap_or(horizon);
                    let dur = end.saturating_sub(e.at);
                    emit(
                        format!(
                            "{{\"name\":\"{}\",\"cat\":\"hm\",\"ph\":\"X\",\"ts\":{},\
                             \"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{\"trace\":{},\
                             \"span\":{},\"parent\":{},\"detail\":\"{}\"}}}}",
                            e.name,
                            micros(e.at),
                            micros(dur),
                            Lane::pid(e.lane),
                            e.lane,
                            e.trace.0,
                            e.span.0,
                            e.parent.0,
                            escape(&e.detail),
                        ),
                        &mut out,
                    );
                }
                Phase::End => {}
                Phase::Instant => {
                    emit(
                        format!(
                            "{{\"name\":\"{}\",\"cat\":\"hm\",\"ph\":\"i\",\"ts\":{},\
                             \"pid\":{},\"tid\":{},\"s\":\"t\",\"args\":{{\"trace\":{},\
                             \"parent\":{},\"detail\":\"{}\"}}}}",
                            e.name,
                            micros(e.at),
                            Lane::pid(e.lane),
                            e.lane,
                            e.trace.0,
                            e.parent.0,
                            escape(&e.detail),
                        ),
                        &mut out,
                    );
                }
            }
        }
        let dropped = self.events_dropped();
        out.push_str("\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":");
        let _ = write!(out, "{dropped}");
        out.push_str("}}\n");
        out
    }

    /// Exports the retained events as compact JSONL: one event per line in
    /// global `seq` order with a stable field order. Identical seeds yield
    /// byte-identical output.
    #[must_use]
    pub fn export_jsonl(&self) -> String {
        let events = self.merged_events();
        let mut out = String::with_capacity(events.len() * 80);
        for e in &events {
            let _ = writeln!(
                out,
                "{{\"seq\":{},\"at_ns\":{},\"lane\":\"{}\",\"trace\":{},\"span\":{},\
                 \"parent\":{},\"ph\":\"{}\",\"name\":\"{}\",\"detail\":\"{}\"}}",
                e.seq,
                e.at.as_nanos(),
                Lane::label(e.lane),
                e.trace.0,
                e.span.0,
                e.parent.0,
                e.phase.code(),
                e.name,
                escape(&e.detail),
            );
        }
        out
    }

    /// Per-op critical-path breakdown of one trace: every op span (a child
    /// of an `attempt` span), in start order, with counts of the substrate
    /// round-trips in its subtree. This is how tests assert the paper's
    /// op-count claims ("Halfmoon-read reads append nothing; Halfmoon-write
    /// reads append exactly once") on the critical path rather than in
    /// aggregate.
    #[must_use]
    pub fn critical_path(&self, trace: TraceId) -> Vec<OpSummary> {
        let events: Vec<TraceEvent> = self
            .merged_events()
            .into_iter()
            .filter(|e| e.trace == trace)
            .collect();
        // Span table: id → (name, parent, begin, end).
        struct SpanInfo {
            name: &'static str,
            parent: SpanId,
            begin: Duration,
            end: Option<Duration>,
            begin_seq: u64,
        }
        let mut spans: FxHashMap<u64, SpanInfo> = FxHashMap::default();
        for e in &events {
            match e.phase {
                Phase::Begin => {
                    spans.insert(
                        e.span.0,
                        SpanInfo {
                            name: e.name,
                            parent: e.parent,
                            begin: e.at,
                            end: None,
                            begin_seq: e.seq,
                        },
                    );
                }
                Phase::End => {
                    if let Some(info) = spans.get_mut(&e.span.0) {
                        info.end = Some(e.at);
                    }
                }
                Phase::Instant => {}
            }
        }
        // The op level: children of `attempt` spans.
        let mut ops: Vec<(u64, &SpanInfo)> = spans
            .iter()
            .filter(|(_, info)| {
                spans
                    .get(&info.parent.0)
                    .is_some_and(|p| p.name == "attempt")
            })
            .map(|(id, info)| (*id, info))
            .collect();
        ops.sort_by_key(|(_, info)| info.begin_seq);
        let mut summaries: Vec<OpSummary> = ops
            .iter()
            .map(|(id, info)| OpSummary {
                name: info.name,
                span: SpanId(*id),
                start: info.begin,
                end: info.end.unwrap_or(info.begin),
                log_appends: 0,
                log_reads: 0,
                log_trims: 0,
                db_reads: 0,
                db_writes: 0,
                db_cond_writes: 0,
                db_deletes: 0,
                cache_hits: 0,
                cache_misses: 0,
            })
            .collect();
        let op_index: FxHashMap<u64, usize> = summaries
            .iter()
            .enumerate()
            .map(|(i, s)| (s.span.0, i))
            .collect();
        // Attribute each substrate span / instant to its nearest op
        // ancestor (chains are short: op → substrate span → instant).
        let nearest_op = |mut parent: SpanId| -> Option<usize> {
            for _ in 0..8 {
                if let Some(&i) = op_index.get(&parent.0) {
                    return Some(i);
                }
                parent = spans.get(&parent.0)?.parent;
            }
            None
        };
        for (id, info) in &spans {
            if op_index.contains_key(id) {
                continue;
            }
            let Some(i) = nearest_op(info.parent) else {
                continue;
            };
            let s = &mut summaries[i];
            match info.name {
                "log_append" | "log_cond_append" => s.log_appends += 1,
                "log_read_prev" | "log_read_next" | "log_read_stream" => s.log_reads += 1,
                "log_trim" => s.log_trims += 1,
                "db_read" | "db_version_read" => s.db_reads += 1,
                "db_write" | "db_version_write" => s.db_writes += 1,
                "db_cond_write" => s.db_cond_writes += 1,
                "db_delete" => s.db_deletes += 1,
                _ => {}
            }
        }
        for e in &events {
            if e.phase != Phase::Instant {
                continue;
            }
            let Some(i) = nearest_op(e.parent) else {
                continue;
            };
            match e.name {
                "cache_hit" => summaries[i].cache_hits += 1,
                "cache_miss" => summaries[i].cache_misses += 1,
                _ => {}
            }
        }
        summaries
    }
}

/// One op span of a trace's critical path, with the substrate round-trips
/// in its subtree. Produced by [`Tracer::critical_path`].
#[derive(Clone, Debug)]
pub struct OpSummary {
    /// Op span name (`init`, `read`, `write`, `invoke`, `finish`, …).
    pub name: &'static str,
    /// The op's span id.
    pub span: SpanId,
    /// Virtual-time start of the op.
    pub start: Duration,
    /// Virtual-time end (start if the End event was lost).
    pub end: Duration,
    /// Shared-log appends (plain + conditional).
    pub log_appends: u32,
    /// Shared-log reads (prev/next/stream).
    pub log_reads: u32,
    /// Shared-log trims.
    pub log_trims: u32,
    /// KV reads (plain + versioned).
    pub db_reads: u32,
    /// KV writes (plain + versioned).
    pub db_writes: u32,
    /// KV conditional writes.
    pub db_cond_writes: u32,
    /// KV version deletes.
    pub db_deletes: u32,
    /// Log-read cache hits inside this op.
    pub cache_hits: u32,
    /// Log-read cache misses inside this op.
    pub cache_misses: u32,
}

/// Formats a [`Duration`] as Chrome-trace microseconds with nanosecond
/// decimals (`1234.567`), deterministically (no float formatting).
fn micros(d: Duration) -> String {
    let ns = d.as_nanos();
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Escapes a detail string for embedding in a JSON string literal.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Metrics registry (moved to `crate::metrics`; re-exported for path
// compatibility — `hm_common::trace::MetricsRegistry` remains valid)
// ---------------------------------------------------------------------------

pub use crate::metrics::{Counter, Gauge, HistogramHandle, MetricsRegistry, MetricsSample};

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Duration {
        Duration::from_millis(ms)
    }

    #[test]
    fn spans_pair_into_complete_events() {
        let tr = Tracer::new();
        let trace = tr.new_trace();
        let a = tr.span_begin(Lane::Node(0), t(1), trace, SpanId::NONE, "attempt", String::new());
        let op = tr.span_begin(Lane::Node(0), t(2), trace, a, "read", String::new());
        tr.instant(Lane::Node(0), t(3), trace, op, "cache_hit", String::new());
        tr.span_end(Lane::Node(0), t(4), trace, op);
        tr.span_end(Lane::Node(0), t(5), trace, a);
        let chrome = tr.export_chrome_json();
        assert!(chrome.contains("\"ph\":\"X\""), "{chrome}");
        assert!(chrome.contains("\"name\":\"read\""), "{chrome}");
        assert!(chrome.contains("\"ph\":\"i\""), "{chrome}");
        assert!(chrome.contains("\"name\":\"node0\""), "{chrome}");
        // read: ts = 2000 µs, dur = 2000 µs.
        assert!(chrome.contains("\"ts\":2000.000,\"dur\":2000.000"), "{chrome}");
    }

    #[test]
    fn chrome_export_labels_processes_and_threads() {
        let tr = Tracer::new();
        let trace = tr.new_trace();
        let s = tr.span_begin(Lane::Node(3), t(1), trace, SpanId::NONE, "attempt", String::new());
        tr.instant(Lane::Sequencer(2), t(2), trace, s, "sequenced", String::new());
        tr.instant(Lane::Storage, t(3), trace, s, "trim_reclaimed", String::new());
        tr.instant(Lane::Gateway, t(3), trace, s, "admit", String::new());
        tr.span_end(Lane::Node(3), t(4), trace, s);
        let chrome = tr.export_chrome_json();
        // Every lane group gets a process_name, every lane a thread_name.
        assert!(chrome.contains("\"name\":\"process_name\""), "{chrome}");
        assert!(chrome.contains("\"name\":\"function nodes\""), "{chrome}");
        assert!(chrome.contains("\"name\":\"shared-log sequencers\""), "{chrome}");
        assert!(
            chrome.contains("\"name\":\"substrate (storage/gateway/gc)\""),
            "{chrome}"
        );
        assert!(chrome.contains("\"name\":\"sequencer2\""), "{chrome}");
        assert!(chrome.contains("\"name\":\"gateway\""), "{chrome}");
        // Events carry their lane's pid so the groups actually nest.
        assert!(chrome.contains("\"pid\":1,\"tid\":1026"), "{chrome}");
        assert!(chrome.contains("\"pid\":2,\"tid\":2049"), "{chrome}");
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let tr = Tracer::with_capacity(8);
        let trace = tr.new_trace();
        for i in 0..20 {
            tr.instant(Lane::Node(0), t(i), trace, SpanId::NONE, "tick", String::new());
        }
        assert_eq!(tr.events_recorded(), 20);
        assert_eq!(tr.events_dropped(), 12);
        let jsonl = tr.export_jsonl();
        assert_eq!(jsonl.lines().count(), 8);
        // The *newest* events survive.
        assert!(jsonl.contains("\"seq\":19"), "{jsonl}");
        assert!(!jsonl.contains("\"seq\":0,"), "{jsonl}");
    }

    #[test]
    fn critical_path_counts_substrate_children() {
        let tr = Tracer::new();
        let trace = tr.new_trace();
        let attempt =
            tr.span_begin(Lane::Node(1), t(0), trace, SpanId::NONE, "attempt", String::new());
        let read = tr.span_begin(Lane::Node(1), t(1), trace, attempt, "read", String::new());
        let lr = tr.span_begin(Lane::Storage, t(1), trace, read, "log_read_prev", String::new());
        tr.instant(Lane::Node(1), t(1), trace, lr, "cache_miss", String::new());
        tr.span_end(Lane::Storage, t(2), trace, lr);
        let dbr = tr.span_begin(Lane::Storage, t(2), trace, read, "db_read", String::new());
        tr.span_end(Lane::Storage, t(3), trace, dbr);
        tr.span_end(Lane::Node(1), t(3), trace, read);
        let write = tr.span_begin(Lane::Node(1), t(4), trace, attempt, "write", String::new());
        let ap = tr.span_begin(Lane::Storage, t(4), trace, write, "log_cond_append", String::new());
        tr.span_end(Lane::Storage, t(5), trace, ap);
        tr.span_end(Lane::Node(1), t(5), trace, write);
        tr.span_end(Lane::Node(1), t(6), trace, attempt);
        // An unrelated trace must not contaminate the result.
        let other = tr.new_trace();
        tr.span_begin(Lane::Node(2), t(0), other, SpanId::NONE, "attempt", String::new());

        let ops = tr.critical_path(trace);
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].name, "read");
        assert_eq!(ops[0].log_reads, 1);
        assert_eq!(ops[0].db_reads, 1);
        assert_eq!(ops[0].cache_misses, 1);
        assert_eq!(ops[0].log_appends, 0);
        assert_eq!(ops[1].name, "write");
        assert_eq!(ops[1].log_appends, 1);
        assert_eq!(ops[1].end - ops[1].start, t(1));
    }

    #[test]
    fn jsonl_is_deterministic_for_identical_call_sequences() {
        let run = || {
            let tr = Tracer::new();
            let trace = tr.new_trace();
            let s = tr.span_begin(Lane::Gateway, t(1), trace, SpanId::NONE, "request", String::new());
            tr.instant(Lane::Sequencer(0), t(2), trace, s, "sequenced", "sn7".to_string());
            tr.span_end(Lane::Gateway, t(3), trace, s);
            tr.export_jsonl()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn bindings_route_identity() {
        let tr = Tracer::new();
        let trace = tr.new_trace();
        let span = tr.span_begin(Lane::Gateway, t(0), trace, SpanId::NONE, "request", String::new());
        tr.bind(42, trace, span);
        assert_eq!(tr.binding(42), Some((trace, span)));
        assert_eq!(tr.binding(7), None);
        tr.set_context(trace, span);
        assert_eq!(tr.context(), (trace, span));
        tr.clear_context();
        assert_eq!(tr.context(), (TraceId::NONE, SpanId::NONE));
    }

    #[test]
    fn detail_strings_are_escaped() {
        let tr = Tracer::new();
        let trace = tr.new_trace();
        tr.instant(
            Lane::Gc,
            t(1),
            trace,
            SpanId::NONE,
            "note",
            "say \"hi\"\\\n".to_string(),
        );
        let jsonl = tr.export_jsonl();
        assert!(jsonl.contains(r#"say \"hi\"\\\n"#), "{jsonl}");
    }
}
