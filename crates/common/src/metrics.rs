//! Measurement primitives for the benchmark harness.
//!
//! Three instruments cover everything the paper reports:
//! - [`Histogram`]: latency quantiles (median / p99 bars and curves);
//! - [`TimeWeightedGauge`]: time-averaged storage usage (Figure 12 reports
//!   *time-averaged* MB over a 10-minute window);
//! - [`OpCounters`]: logging-operation counts, used to report "logging
//!   overhead" in units of abstract log operations (§4.3).
//!
//! On top of these sits the [`MetricsRegistry`]: named
//! [`Counter`]/[`Gauge`]/[`HistogramHandle`] instruments behind `Cell` fast
//! paths (the single-threaded analog of relaxed atomics — a bump is one
//! load/store, no borrow bookkeeping), plus a virtual-time sample series.
//! It lived in `trace.rs` historically; `hm_common::trace` re-exports the
//! registry types so existing paths keep working.

use std::cell::{Cell, RefCell};
use std::fmt::Write as _;
use std::rc::Rc;
use std::time::Duration;

use crate::trace::escape;

/// A latency histogram with logarithmic buckets.
///
/// Buckets span 1 µs to ~17 minutes with 64 buckets per octave, giving a
/// worst-case quantile error below ~1.1 % — far finer than the effects the
/// paper reports. Recording is O(1); quantile queries are O(#buckets).
#[derive(Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u128,
    max_ns: u64,
    min_ns: u64,
}

/// Sub-buckets per power of two. 64 gives ≤ 1.6 % relative bucket width.
const SUBBUCKETS: u64 = 64;
/// Lowest representable latency: 1 µs (everything below clamps up).
const MIN_NS: u64 = 1_000;
/// Number of octaves covered: 1 µs × 2^30 ≈ 17.9 min.
const OCTAVES: usize = 30;

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram {
            buckets: vec![0; OCTAVES * SUBBUCKETS as usize],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
            min_ns: u64::MAX,
        }
    }

    fn bucket_index(ns: u64) -> usize {
        let ns = ns.max(MIN_NS);
        let ratio = ns / MIN_NS;
        let octave = (63 - ratio.leading_zeros()) as u64; // floor(log2(ratio))
        let octave = octave.min(OCTAVES as u64 - 1);
        let base = MIN_NS << octave;
        // Position within the octave, scaled to SUBBUCKETS slots.
        let within = ((ns - base).saturating_mul(SUBBUCKETS)) / base;
        (octave * SUBBUCKETS + within.min(SUBBUCKETS - 1)) as usize
    }

    fn bucket_value_ns(index: usize) -> u64 {
        let octave = index as u64 / SUBBUCKETS;
        let within = index as u64 % SUBBUCKETS;
        let base = MIN_NS << octave;
        // Midpoint of the bucket.
        base + (base * within) / SUBBUCKETS + base / (2 * SUBBUCKETS)
    }

    /// Records one latency observation.
    pub fn record(&mut self, latency: Duration) {
        self.record_ns(latency.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one latency observation given directly in nanoseconds
    /// (the anatomy layer accrues integer ns off the virtual clock).
    pub fn record_ns(&mut self, ns: u64) {
        self.buckets[Self::bucket_index(ns)] += 1;
        self.count += 1;
        self.sum_ns += u128::from(ns);
        self.max_ns = self.max_ns.max(ns);
        self.min_ns = self.min_ns.min(ns);
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The `q`-quantile (`0.0 ≤ q ≤ 1.0`) in milliseconds, or `None` if the
    /// histogram is empty.
    #[must_use]
    pub fn quantile_ms(&self, q: f64) -> Option<f64> {
        Some(self.quantile_ns(q)? as f64 / 1e6)
    }

    /// The `q`-quantile in integer nanoseconds, or `None` if the histogram
    /// is empty.
    ///
    /// HDR-style cumulative-count walk over the log2 buckets, coherent with
    /// the tracked extremes: `quantile_ns(0.0)` and `quantile_ns(1.0)` return
    /// the raw min/max observation exactly (a bucket midpoint can sit on
    /// either side of the true extreme, which would break the invariant
    /// `quantile(0.0) ≤ mean ≤ quantile(1.0)`), and every interior quantile
    /// is clamped into `[min, max]` so no answer can lie outside the
    /// observed range.
    #[must_use]
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if q <= 0.0 {
            return Some(self.min_ns);
        }
        if q >= 1.0 {
            return Some(self.max_ns);
        }
        // Rank of the target observation (1-based ceil, like numpy 'lower').
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= target {
                return Some(Self::bucket_value_ns(i).clamp(self.min_ns, self.max_ns));
            }
        }
        Some(self.max_ns)
    }

    /// Median latency in milliseconds.
    #[must_use]
    pub fn median_ms(&self) -> Option<f64> {
        self.quantile_ms(0.5)
    }

    /// 99th-percentile latency in milliseconds.
    #[must_use]
    pub fn p99_ms(&self) -> Option<f64> {
        self.quantile_ms(0.99)
    }

    /// Mean latency in milliseconds.
    #[must_use]
    pub fn mean_ms(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum_ns as f64 / self.count as f64 / 1e6)
        }
    }

    /// Largest recorded latency in milliseconds.
    #[must_use]
    pub fn max_ms(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max_ns as f64 / 1e6)
        }
    }

    /// Smallest recorded latency in milliseconds.
    #[must_use]
    pub fn min_ms(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min_ns as f64 / 1e6)
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Histogram(n={}, min={:?}ms, p50={:?}ms, p99={:?}ms)",
            self.count,
            self.min_ms(),
            self.median_ms(),
            self.p99_ms()
        )
    }
}

/// Integrates a step function of "current usage" over virtual time to report
/// its time-weighted average — how Figure 12 measures storage.
///
/// Call [`TimeWeightedGauge::set`] whenever the usage level changes, passing
/// the current virtual time; call [`TimeWeightedGauge::average`] at the end
/// of the measurement window.
#[derive(Clone, Debug)]
pub struct TimeWeightedGauge {
    level: f64,
    last_change: Duration,
    weighted_sum: f64,
    started: Duration,
}

impl TimeWeightedGauge {
    /// Creates a gauge at level 0 whose window starts at virtual time `now`.
    #[must_use]
    pub fn new(now: Duration) -> TimeWeightedGauge {
        TimeWeightedGauge {
            level: 0.0,
            last_change: now,
            weighted_sum: 0.0,
            started: now,
        }
    }

    /// Updates the level at virtual time `now`.
    ///
    /// # Panics
    /// Panics if `now` moves backwards (virtual time is monotone).
    pub fn set(&mut self, now: Duration, level: f64) {
        assert!(now >= self.last_change, "virtual time went backwards");
        self.weighted_sum += self.level * (now - self.last_change).as_secs_f64();
        self.level = level;
        self.last_change = now;
    }

    /// Adds a delta to the current level at virtual time `now`.
    pub fn add(&mut self, now: Duration, delta: f64) {
        let next = self.level + delta;
        self.set(now, next);
    }

    /// The current level.
    #[must_use]
    pub fn level(&self) -> f64 {
        self.level
    }

    /// Time-weighted average level over `[start, now]`.
    #[must_use]
    pub fn average(&self, now: Duration) -> f64 {
        let window = (now - self.started).as_secs_f64();
        if window <= 0.0 {
            return self.level;
        }
        let tail = self.level * (now - self.last_change).as_secs_f64();
        (self.weighted_sum + tail) / window
    }

    /// Restarts the measurement window at `now`, keeping the current level.
    pub fn reset_window(&mut self, now: Duration) {
        self.weighted_sum = 0.0;
        self.last_change = now;
        self.started = now;
    }
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

/// A named monotonic counter handle (cheap to clone, cheap to bump).
#[derive(Clone)]
pub struct Counter(Rc<Cell<u64>>);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.set(self.0.get().saturating_add(n));
    }

    /// Increments the counter by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Overwrites the counter (for counters mirrored from another source).
    pub fn set(&self, v: u64) {
        self.0.set(v);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

/// A named gauge handle (last-write-wins instantaneous value).
#[derive(Clone)]
pub struct Gauge(Rc<Cell<f64>>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.set(v);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        self.0.get()
    }
}

/// A named histogram handle.
#[derive(Clone)]
pub struct HistogramHandle(Rc<RefCell<Histogram>>);

impl HistogramHandle {
    /// Records one observation.
    pub fn record(&self, d: Duration) {
        self.0.borrow_mut().record(d);
    }

    /// Observation count so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.borrow().count()
    }

    /// Runs `f` against the underlying histogram.
    pub fn with<R>(&self, f: impl FnOnce(&Histogram) -> R) -> R {
        f(&self.0.borrow())
    }
}

/// One sampled row of the registry's time series.
#[derive(Clone, Debug)]
pub struct MetricsSample {
    /// Virtual time of the sample.
    pub at: Duration,
    /// Counter values, in registration order.
    pub counters: Vec<u64>,
    /// Gauge values, in registration order.
    pub gauges: Vec<f64>,
    /// Histogram observation counts, in registration order.
    pub hist_counts: Vec<u64>,
}

#[derive(Default)]
struct RegistryInner {
    counters: Vec<(String, Counter)>,
    gauges: Vec<(String, Gauge)>,
    histograms: Vec<(String, HistogramHandle)>,
    samples: Vec<MetricsSample>,
}

/// A registry of named counters/gauges/histograms plus a virtual-time
/// series of their sampled values. Handles are get-or-create by name, so
/// independent components can share an instrument. Sampling is driven
/// externally (e.g. `hm_runtime::MetricsDriver`) at a configurable
/// virtual-time interval; the registry itself never spawns tasks.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: RefCell<RegistryInner>,
}

impl MetricsRegistry {
    /// A fresh, empty registry behind an `Rc` for sharing.
    #[must_use]
    pub fn new() -> Rc<MetricsRegistry> {
        Rc::new(MetricsRegistry::default())
    }

    /// The counter named `name`, creating it (at zero) on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.borrow_mut();
        if let Some((_, c)) = inner.counters.iter().find(|(n, _)| n == name) {
            return c.clone();
        }
        let c = Counter(Rc::new(Cell::new(0)));
        inner.counters.push((name.to_string(), c.clone()));
        c
    }

    /// The gauge named `name`, creating it (at zero) on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.borrow_mut();
        if let Some((_, g)) = inner.gauges.iter().find(|(n, _)| n == name) {
            return g.clone();
        }
        let g = Gauge(Rc::new(Cell::new(0.0)));
        inner.gauges.push((name.to_string(), g.clone()));
        g
    }

    /// The histogram named `name`, creating it empty on first use.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        let mut inner = self.inner.borrow_mut();
        if let Some((_, h)) = inner.histograms.iter().find(|(n, _)| n == name) {
            return h.clone();
        }
        let h = HistogramHandle(Rc::new(RefCell::new(Histogram::new())));
        inner.histograms.push((name.to_string(), h.clone()));
        h
    }

    /// Appends one time-series row snapshotting every registered
    /// instrument at virtual time `now`.
    pub fn sample(&self, now: Duration) {
        let mut inner = self.inner.borrow_mut();
        let row = MetricsSample {
            at: now,
            counters: inner.counters.iter().map(|(_, c)| c.get()).collect(),
            gauges: inner.gauges.iter().map(|(_, g)| g.get()).collect(),
            hist_counts: inner.histograms.iter().map(|(_, h)| h.count()).collect(),
        };
        inner.samples.push(row);
    }

    /// Number of sampled rows so far.
    #[must_use]
    pub fn samples_len(&self) -> usize {
        self.inner.borrow().samples.len()
    }

    /// Runs `f` over the sampled rows.
    pub fn with_samples<R>(&self, f: impl FnOnce(&[MetricsSample]) -> R) -> R {
        f(&self.inner.borrow().samples)
    }

    /// Exports the time series as JSON: instrument names plus one row per
    /// sample, deterministic field and row order.
    #[must_use]
    pub fn series_json(&self) -> String {
        let inner = self.inner.borrow();
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"counters\": [{}],", names_of(&inner.counters));
        let _ = writeln!(out, "  \"gauges\": [{}],", names_of(&inner.gauges));
        let _ = writeln!(out, "  \"histograms\": [{}],", names_of(&inner.histograms));
        out.push_str("  \"samples\": [\n");
        for (i, row) in inner.samples.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"at_ns\":{},\"counters\":{:?},\"gauges\":{:?},\"hist_counts\":{:?}}}",
                row.at.as_nanos(),
                row.counters,
                row.gauges,
                row.hist_counts
            );
            out.push_str(if i + 1 < inner.samples.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Comma-joined, escaped instrument names for [`MetricsRegistry::series_json`].
fn names_of<T>(items: &[(String, T)]) -> String {
    let mut s = String::new();
    for (i, (n, _)) in items.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{}\"", escape(n));
    }
    s
}

/// Declares [`OpCounters`] from one field list, generating the struct and
/// its element-wise windowing arithmetic in lockstep (the `record_op!`
/// pattern: one declaration, every derived method) — adding a counter is a
/// one-line change that cannot miss `since`/`merged`.
macro_rules! op_counters {
    ($( $(#[$doc:meta])* $field:ident ),+ $(,)?) => {
        /// Counters for the abstract logging operations of §4.3, plus raw
        /// store traffic. "Logging overhead" in the paper is measured in
        /// these units.
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
        pub struct OpCounters {
            $( $(#[$doc])* pub $field: u64, )+
        }

        impl OpCounters {
            /// Element-wise difference `self - earlier`, for windowed
            /// measurement.
            ///
            /// Saturating: a mis-ordered window (an `earlier` snapshot taken
            /// after `self`) yields zeros for the affected fields rather
            /// than panicking in debug builds or wrapping in release builds.
            #[must_use]
            pub fn since(&self, earlier: &OpCounters) -> OpCounters {
                OpCounters {
                    $( $field: self.$field.saturating_sub(earlier.$field), )+
                }
            }

            /// Element-wise sum `self + other`, for aggregating per-shard
            /// counter snapshots into one deployment-wide view. Saturating,
            /// like [`since`].
            ///
            /// [`since`]: OpCounters::since
            #[must_use]
            pub fn merged(&self, other: &OpCounters) -> OpCounters {
                OpCounters {
                    $( $field: self.$field.saturating_add(other.$field), )+
                }
            }
        }
    };
}

op_counters! {
    /// Log appends (including conditional appends that succeeded).
    log_appends,
    /// Conditional appends that lost the peer race and were undone.
    cond_append_conflicts,
    /// Log reads (`read_prev` / `read_next`).
    log_reads,
    /// Log trims issued by the garbage collector.
    log_trims,
    /// Raw store reads.
    db_reads,
    /// Raw store writes (unconditional).
    db_writes,
    /// Conditional store writes.
    db_cond_writes,
    /// Store deletes (garbage collection of old versions).
    db_deletes,
    /// Log reads answered from the per-node record cache.
    cache_hits,
    /// Log reads that missed the per-node record cache and paid the
    /// storage round-trip. Reads that find no record are counted in
    /// neither bucket (they are answered from the node's stream index).
    cache_misses,
}

impl OpCounters {
    /// Total abstract log operations on the critical path (appends only;
    /// §4.3 counts standalone fault-tolerant records, not lookups).
    #[must_use]
    pub fn total_log_appends(&self) -> u64 {
        self.log_appends
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_are_close() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(Duration::from_micros(i * 10)); // 10µs..10ms uniform
        }
        let median = h.median_ms().unwrap();
        assert!((median - 5.0).abs() < 0.2, "median {median}");
        let p99 = h.p99_ms().unwrap();
        assert!((p99 - 9.9).abs() < 0.3, "p99 {p99}");
        assert_eq!(h.count(), 1000);
    }

    #[test]
    fn histogram_relative_error_bound() {
        let mut h = Histogram::new();
        let v = Duration::from_nanos(1_234_567);
        h.record(v);
        let got = h.median_ms().unwrap();
        let want = 1.234_567;
        assert!((got - want).abs() / want < 0.02, "got {got}");
    }

    #[test]
    fn histogram_empty_returns_none() {
        let h = Histogram::new();
        assert!(h.median_ms().is_none());
        assert!(h.mean_ms().is_none());
    }

    #[test]
    fn histogram_merge_combines_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(Duration::from_millis(1));
        b.record(Duration::from_millis(3));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!(a.max_ms().unwrap() > 2.9);
    }

    #[test]
    fn histogram_handles_extremes() {
        let mut h = Histogram::new();
        h.record(Duration::from_nanos(1)); // clamps to 1µs bucket
        h.record(Duration::from_secs(3600)); // clamps into last octave
        assert_eq!(h.count(), 2);
        assert!(h.quantile_ms(0.0).unwrap() <= 0.002);
    }

    #[test]
    fn histogram_min_accessor_and_debug() {
        let mut h = Histogram::new();
        assert!(h.min_ms().is_none());
        h.record(Duration::from_millis(3));
        h.record(Duration::from_millis(7));
        assert!((h.min_ms().unwrap() - 3.0).abs() < 1e-9);
        assert!((h.max_ms().unwrap() - 7.0).abs() < 1e-9);
        let dbg = format!("{h:?}");
        assert!(dbg.contains("min="), "{dbg}");
    }

    #[test]
    fn histogram_extreme_quantiles_are_exact() {
        let mut h = Histogram::new();
        h.record(Duration::from_micros(123));
        h.record(Duration::from_millis(45));
        // q=0 / q=1 return the raw extremes, not bucket midpoints.
        assert!((h.quantile_ms(0.0).unwrap() - 0.123).abs() < 1e-12);
        assert!((h.quantile_ms(1.0).unwrap() - 45.0).abs() < 1e-12);
        assert_eq!(h.quantile_ms(0.0), h.min_ms());
        assert_eq!(h.quantile_ms(1.0), h.max_ms());
    }

    /// Property test (seeded splitmix loop, no proptest in this workspace):
    /// under arbitrary recorded sets, quantiles are coherent — `q=0`/`q=1`
    /// equal the recorded min/max *exactly*, quantiles are monotone in `q`,
    /// and every interior quantile stays inside the observed range.
    #[test]
    fn histogram_quantile_coherence_property() {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for case in 0..200 {
            let n = 1 + (next() % 300) as usize;
            let mut h = Histogram::new();
            let mut min = u64::MAX;
            let mut max = 0u64;
            for _ in 0..n {
                // Span sub-bucket ns up through minutes.
                let ns = 1 + next() % 100_000_000_000;
                h.record(Duration::from_nanos(ns));
                min = min.min(ns);
                max = max.max(ns);
            }
            assert_eq!(h.quantile_ns(0.0), Some(min), "case {case}");
            assert_eq!(h.quantile_ns(1.0), Some(max), "case {case}");
            assert_eq!(h.quantile_ms(0.0), h.min_ms(), "case {case}");
            assert_eq!(h.quantile_ms(1.0), h.max_ms(), "case {case}");
            let mut prev = 0u64;
            for step in 0..=20 {
                let q = f64::from(step) / 20.0;
                let v = h.quantile_ns(q).unwrap();
                assert!(v >= min && v <= max, "case {case} q {q}: {v} outside");
                assert!(v >= prev, "case {case} q {q}: not monotone");
                prev = v;
            }
        }
    }

    #[test]
    fn counters_since_saturates_on_misordered_window() {
        let newer = OpCounters {
            log_appends: 5,
            db_reads: 100,
            ..OpCounters::default()
        };
        let older = OpCounters {
            log_appends: 10, // "earlier" snapshot actually taken later
            db_reads: 40,
            ..OpCounters::default()
        };
        let d = newer.since(&older);
        assert_eq!(d.log_appends, 0, "mis-ordered field saturates to zero");
        assert_eq!(d.db_reads, 60, "well-ordered fields still subtract");
    }

    #[test]
    fn gauge_time_weighted_average() {
        let mut g = TimeWeightedGauge::new(Duration::ZERO);
        g.set(Duration::from_secs(0), 10.0);
        g.set(Duration::from_secs(5), 20.0); // 10 for 5s
        let avg = g.average(Duration::from_secs(10)); // 20 for 5s
        assert!((avg - 15.0).abs() < 1e-9, "avg {avg}");
    }

    #[test]
    fn gauge_add_and_reset() {
        let mut g = TimeWeightedGauge::new(Duration::ZERO);
        g.add(Duration::ZERO, 4.0);
        g.add(Duration::from_secs(2), -2.0);
        assert_eq!(g.level(), 2.0);
        g.reset_window(Duration::from_secs(2));
        let avg = g.average(Duration::from_secs(4));
        assert!((avg - 2.0).abs() < 1e-9);
    }

    #[test]
    fn counters_windowed_difference() {
        let a = OpCounters {
            log_appends: 10,
            db_reads: 4,
            ..OpCounters::default()
        };
        let b = OpCounters {
            log_appends: 25,
            db_reads: 9,
            ..OpCounters::default()
        };
        let d = b.since(&a);
        assert_eq!(d.log_appends, 15);
        assert_eq!(d.db_reads, 5);
        assert_eq!(d.total_log_appends(), 15);
    }

    #[test]
    fn metrics_registry_handles_and_samples() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("log_appends");
        let c2 = reg.counter("log_appends");
        c.add(3);
        c2.inc();
        assert_eq!(reg.counter("log_appends").get(), 4, "get-or-create shares");
        let g = reg.gauge("inflight");
        g.set(2.5);
        let h = reg.histogram("latency");
        h.record(Duration::from_millis(5));
        reg.sample(Duration::from_millis(100));
        c.inc();
        reg.sample(Duration::from_millis(200));
        assert_eq!(reg.samples_len(), 2);
        reg.with_samples(|rows| {
            assert_eq!(rows[0].counters, vec![4]);
            assert_eq!(rows[1].counters, vec![5]);
            assert_eq!(rows[0].gauges, vec![2.5]);
            assert_eq!(rows[0].hist_counts, vec![1]);
        });
        let json = reg.series_json();
        assert!(json.contains("\"log_appends\""), "{json}");
        assert!(json.contains("\"at_ns\":100000000"), "{json}");
    }
}
