//! Measurement primitives for the benchmark harness.
//!
//! Three instruments cover everything the paper reports:
//! - [`Histogram`]: latency quantiles (median / p99 bars and curves);
//! - [`TimeWeightedGauge`]: time-averaged storage usage (Figure 12 reports
//!   *time-averaged* MB over a 10-minute window);
//! - [`OpCounters`]: logging-operation counts, used to report "logging
//!   overhead" in units of abstract log operations (§4.3).

use std::time::Duration;

/// A latency histogram with logarithmic buckets.
///
/// Buckets span 1 µs to ~17 minutes with 64 buckets per octave, giving a
/// worst-case quantile error below ~1.1 % — far finer than the effects the
/// paper reports. Recording is O(1); quantile queries are O(#buckets).
#[derive(Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u128,
    max_ns: u64,
    min_ns: u64,
}

/// Sub-buckets per power of two. 64 gives ≤ 1.6 % relative bucket width.
const SUBBUCKETS: u64 = 64;
/// Lowest representable latency: 1 µs (everything below clamps up).
const MIN_NS: u64 = 1_000;
/// Number of octaves covered: 1 µs × 2^30 ≈ 17.9 min.
const OCTAVES: usize = 30;

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram {
            buckets: vec![0; OCTAVES * SUBBUCKETS as usize],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
            min_ns: u64::MAX,
        }
    }

    fn bucket_index(ns: u64) -> usize {
        let ns = ns.max(MIN_NS);
        let ratio = ns / MIN_NS;
        let octave = (63 - ratio.leading_zeros()) as u64; // floor(log2(ratio))
        let octave = octave.min(OCTAVES as u64 - 1);
        let base = MIN_NS << octave;
        // Position within the octave, scaled to SUBBUCKETS slots.
        let within = ((ns - base).saturating_mul(SUBBUCKETS)) / base;
        (octave * SUBBUCKETS + within.min(SUBBUCKETS - 1)) as usize
    }

    fn bucket_value_ns(index: usize) -> u64 {
        let octave = index as u64 / SUBBUCKETS;
        let within = index as u64 % SUBBUCKETS;
        let base = MIN_NS << octave;
        // Midpoint of the bucket.
        base + (base * within) / SUBBUCKETS + base / (2 * SUBBUCKETS)
    }

    /// Records one latency observation.
    pub fn record(&mut self, latency: Duration) {
        let ns = latency.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.buckets[Self::bucket_index(ns)] += 1;
        self.count += 1;
        self.sum_ns += u128::from(ns);
        self.max_ns = self.max_ns.max(ns);
        self.min_ns = self.min_ns.min(ns);
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The `q`-quantile (`0.0 ≤ q ≤ 1.0`) in milliseconds, or `None` if the
    /// histogram is empty.
    #[must_use]
    pub fn quantile_ms(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // The extreme quantiles are tracked exactly: return the raw min/max
        // observation rather than a bucket midpoint (a midpoint can sit on
        // either side of the true extreme, which would break the invariant
        // `quantile_ms(0.0) ≤ mean ≤ quantile_ms(1.0)`).
        if q <= 0.0 {
            return Some(self.min_ns as f64 / 1e6);
        }
        if q >= 1.0 {
            return Some(self.max_ns as f64 / 1e6);
        }
        // Rank of the target observation (1-based ceil, like numpy 'lower').
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(Self::bucket_value_ns(i) as f64 / 1e6);
            }
        }
        Some(self.max_ns as f64 / 1e6)
    }

    /// Median latency in milliseconds.
    #[must_use]
    pub fn median_ms(&self) -> Option<f64> {
        self.quantile_ms(0.5)
    }

    /// 99th-percentile latency in milliseconds.
    #[must_use]
    pub fn p99_ms(&self) -> Option<f64> {
        self.quantile_ms(0.99)
    }

    /// Mean latency in milliseconds.
    #[must_use]
    pub fn mean_ms(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum_ns as f64 / self.count as f64 / 1e6)
        }
    }

    /// Largest recorded latency in milliseconds.
    #[must_use]
    pub fn max_ms(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max_ns as f64 / 1e6)
        }
    }

    /// Smallest recorded latency in milliseconds.
    #[must_use]
    pub fn min_ms(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min_ns as f64 / 1e6)
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Histogram(n={}, min={:?}ms, p50={:?}ms, p99={:?}ms)",
            self.count,
            self.min_ms(),
            self.median_ms(),
            self.p99_ms()
        )
    }
}

/// Integrates a step function of "current usage" over virtual time to report
/// its time-weighted average — how Figure 12 measures storage.
///
/// Call [`TimeWeightedGauge::set`] whenever the usage level changes, passing
/// the current virtual time; call [`TimeWeightedGauge::average`] at the end
/// of the measurement window.
#[derive(Clone, Debug)]
pub struct TimeWeightedGauge {
    level: f64,
    last_change: Duration,
    weighted_sum: f64,
    started: Duration,
}

impl TimeWeightedGauge {
    /// Creates a gauge at level 0 whose window starts at virtual time `now`.
    #[must_use]
    pub fn new(now: Duration) -> TimeWeightedGauge {
        TimeWeightedGauge {
            level: 0.0,
            last_change: now,
            weighted_sum: 0.0,
            started: now,
        }
    }

    /// Updates the level at virtual time `now`.
    ///
    /// # Panics
    /// Panics if `now` moves backwards (virtual time is monotone).
    pub fn set(&mut self, now: Duration, level: f64) {
        assert!(now >= self.last_change, "virtual time went backwards");
        self.weighted_sum += self.level * (now - self.last_change).as_secs_f64();
        self.level = level;
        self.last_change = now;
    }

    /// Adds a delta to the current level at virtual time `now`.
    pub fn add(&mut self, now: Duration, delta: f64) {
        let next = self.level + delta;
        self.set(now, next);
    }

    /// The current level.
    #[must_use]
    pub fn level(&self) -> f64 {
        self.level
    }

    /// Time-weighted average level over `[start, now]`.
    #[must_use]
    pub fn average(&self, now: Duration) -> f64 {
        let window = (now - self.started).as_secs_f64();
        if window <= 0.0 {
            return self.level;
        }
        let tail = self.level * (now - self.last_change).as_secs_f64();
        (self.weighted_sum + tail) / window
    }

    /// Restarts the measurement window at `now`, keeping the current level.
    pub fn reset_window(&mut self, now: Duration) {
        self.weighted_sum = 0.0;
        self.last_change = now;
        self.started = now;
    }
}

/// Counters for the abstract logging operations of §4.3, plus raw store
/// traffic. "Logging overhead" in the paper is measured in these units.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounters {
    /// Log appends (including conditional appends that succeeded).
    pub log_appends: u64,
    /// Conditional appends that lost the peer race and were undone.
    pub cond_append_conflicts: u64,
    /// Log reads (`read_prev` / `read_next`).
    pub log_reads: u64,
    /// Log trims issued by the garbage collector.
    pub log_trims: u64,
    /// Raw store reads.
    pub db_reads: u64,
    /// Raw store writes (unconditional).
    pub db_writes: u64,
    /// Conditional store writes.
    pub db_cond_writes: u64,
    /// Store deletes (garbage collection of old versions).
    pub db_deletes: u64,
    /// Log reads answered from the per-node record cache.
    pub cache_hits: u64,
    /// Log reads that missed the per-node record cache and paid the
    /// storage round-trip. Reads that find no record are counted in
    /// neither bucket (they are answered from the node's stream index).
    pub cache_misses: u64,
}

impl OpCounters {
    /// Total abstract log operations on the critical path (appends only;
    /// §4.3 counts standalone fault-tolerant records, not lookups).
    #[must_use]
    pub fn total_log_appends(&self) -> u64 {
        self.log_appends
    }

    /// Element-wise difference `self - earlier`, for windowed measurement.
    ///
    /// Saturating: a mis-ordered window (an `earlier` snapshot taken after
    /// `self`) yields zeros for the affected fields rather than panicking
    /// in debug builds or wrapping in release builds.
    #[must_use]
    pub fn since(&self, earlier: &OpCounters) -> OpCounters {
        OpCounters {
            log_appends: self.log_appends.saturating_sub(earlier.log_appends),
            cond_append_conflicts: self
                .cond_append_conflicts
                .saturating_sub(earlier.cond_append_conflicts),
            log_reads: self.log_reads.saturating_sub(earlier.log_reads),
            log_trims: self.log_trims.saturating_sub(earlier.log_trims),
            db_reads: self.db_reads.saturating_sub(earlier.db_reads),
            db_writes: self.db_writes.saturating_sub(earlier.db_writes),
            db_cond_writes: self.db_cond_writes.saturating_sub(earlier.db_cond_writes),
            db_deletes: self.db_deletes.saturating_sub(earlier.db_deletes),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
        }
    }

    /// Element-wise sum `self + other`, for aggregating per-shard counter
    /// snapshots into one deployment-wide view. Saturating, like [`since`].
    ///
    /// [`since`]: OpCounters::since
    #[must_use]
    pub fn merged(&self, other: &OpCounters) -> OpCounters {
        OpCounters {
            log_appends: self.log_appends.saturating_add(other.log_appends),
            cond_append_conflicts: self
                .cond_append_conflicts
                .saturating_add(other.cond_append_conflicts),
            log_reads: self.log_reads.saturating_add(other.log_reads),
            log_trims: self.log_trims.saturating_add(other.log_trims),
            db_reads: self.db_reads.saturating_add(other.db_reads),
            db_writes: self.db_writes.saturating_add(other.db_writes),
            db_cond_writes: self.db_cond_writes.saturating_add(other.db_cond_writes),
            db_deletes: self.db_deletes.saturating_add(other.db_deletes),
            cache_hits: self.cache_hits.saturating_add(other.cache_hits),
            cache_misses: self.cache_misses.saturating_add(other.cache_misses),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_are_close() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(Duration::from_micros(i * 10)); // 10µs..10ms uniform
        }
        let median = h.median_ms().unwrap();
        assert!((median - 5.0).abs() < 0.2, "median {median}");
        let p99 = h.p99_ms().unwrap();
        assert!((p99 - 9.9).abs() < 0.3, "p99 {p99}");
        assert_eq!(h.count(), 1000);
    }

    #[test]
    fn histogram_relative_error_bound() {
        let mut h = Histogram::new();
        let v = Duration::from_nanos(1_234_567);
        h.record(v);
        let got = h.median_ms().unwrap();
        let want = 1.234_567;
        assert!((got - want).abs() / want < 0.02, "got {got}");
    }

    #[test]
    fn histogram_empty_returns_none() {
        let h = Histogram::new();
        assert!(h.median_ms().is_none());
        assert!(h.mean_ms().is_none());
    }

    #[test]
    fn histogram_merge_combines_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(Duration::from_millis(1));
        b.record(Duration::from_millis(3));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!(a.max_ms().unwrap() > 2.9);
    }

    #[test]
    fn histogram_handles_extremes() {
        let mut h = Histogram::new();
        h.record(Duration::from_nanos(1)); // clamps to 1µs bucket
        h.record(Duration::from_secs(3600)); // clamps into last octave
        assert_eq!(h.count(), 2);
        assert!(h.quantile_ms(0.0).unwrap() <= 0.002);
    }

    #[test]
    fn histogram_min_accessor_and_debug() {
        let mut h = Histogram::new();
        assert!(h.min_ms().is_none());
        h.record(Duration::from_millis(3));
        h.record(Duration::from_millis(7));
        assert!((h.min_ms().unwrap() - 3.0).abs() < 1e-9);
        assert!((h.max_ms().unwrap() - 7.0).abs() < 1e-9);
        let dbg = format!("{h:?}");
        assert!(dbg.contains("min="), "{dbg}");
    }

    #[test]
    fn histogram_extreme_quantiles_are_exact() {
        let mut h = Histogram::new();
        h.record(Duration::from_micros(123));
        h.record(Duration::from_millis(45));
        // q=0 / q=1 return the raw extremes, not bucket midpoints.
        assert!((h.quantile_ms(0.0).unwrap() - 0.123).abs() < 1e-12);
        assert!((h.quantile_ms(1.0).unwrap() - 45.0).abs() < 1e-12);
        assert_eq!(h.quantile_ms(0.0), h.min_ms());
        assert_eq!(h.quantile_ms(1.0), h.max_ms());
    }

    #[test]
    fn counters_since_saturates_on_misordered_window() {
        let newer = OpCounters {
            log_appends: 5,
            db_reads: 100,
            ..OpCounters::default()
        };
        let older = OpCounters {
            log_appends: 10, // "earlier" snapshot actually taken later
            db_reads: 40,
            ..OpCounters::default()
        };
        let d = newer.since(&older);
        assert_eq!(d.log_appends, 0, "mis-ordered field saturates to zero");
        assert_eq!(d.db_reads, 60, "well-ordered fields still subtract");
    }

    #[test]
    fn gauge_time_weighted_average() {
        let mut g = TimeWeightedGauge::new(Duration::ZERO);
        g.set(Duration::from_secs(0), 10.0);
        g.set(Duration::from_secs(5), 20.0); // 10 for 5s
        let avg = g.average(Duration::from_secs(10)); // 20 for 5s
        assert!((avg - 15.0).abs() < 1e-9, "avg {avg}");
    }

    #[test]
    fn gauge_add_and_reset() {
        let mut g = TimeWeightedGauge::new(Duration::ZERO);
        g.add(Duration::ZERO, 4.0);
        g.add(Duration::from_secs(2), -2.0);
        assert_eq!(g.level(), 2.0);
        g.reset_window(Duration::from_secs(2));
        let avg = g.average(Duration::from_secs(4));
        assert!((avg - 2.0).abs() < 1e-9);
    }

    #[test]
    fn counters_windowed_difference() {
        let a = OpCounters {
            log_appends: 10,
            db_reads: 4,
            ..OpCounters::default()
        };
        let b = OpCounters {
            log_appends: 25,
            db_reads: 9,
            ..OpCounters::default()
        };
        let d = b.since(&a);
        assert_eq!(d.log_appends, 15);
        assert_eq!(d.db_reads, 5);
        assert_eq!(d.total_log_appends(), 15);
    }
}
