//! Black-box flight recorder for post-mortem debugging of seeded failures.
//!
//! Chaos campaigns are deterministic, but "rerun with a bigger trace and
//! stare" is still a miserable debugging loop. The [`FlightRecorder`] keeps a
//! bounded window of recent activity — the tracer's per-lane event rings
//! ([`crate::trace::Tracer::recent_events`]), the anatomy layer's recent
//! per-op phase stamps ([`crate::anatomy::Anatomy::recent_rows`]), and its own
//! incident log — and dumps all of it to JSONL the moment something goes
//! wrong:
//!
//! - the chaos exactly-once auditor finds violations,
//! - a task panics (see [`FlightRecorder::on_panic`]), or
//! - `NodeCrashed` recovery exceeds the attempt budget
//!   ([`FlightRecorder::recovery_budget`]).
//!
//! The model-checking harness (DESIGN.md §19) notes each explored run's
//! serialized schedule into the incident log before auditing, so a
//! violation dump carries its own replay recipe (`mc_schedule`) alongside
//! the trace window.
//!
//! The dump is retained in memory ([`FlightRecorder::last_dump`]) and,
//! when a dump path is configured, written to disk so a failing seeded run
//! leaves a post-mortem artifact behind instead of just an assert message.
//!
//! Like the tracer and anatomy layers, the recorder is passive bookkeeping:
//! it never sleeps, spawns, or draws randomness, so attaching it cannot
//! perturb a seeded run.

use std::cell::RefCell;
use std::path::PathBuf;
use std::rc::Rc;
use std::time::Duration;

use crate::anatomy::Anatomy;
use crate::trace::{escape, Lane, Tracer};

/// Default cap on incidents retained in the recorder's own ring.
const DEFAULT_INCIDENT_CAPACITY: usize = 256;
/// Default number of trace events dumped per lane.
const DEFAULT_EVENTS_PER_LANE: usize = 512;
/// Default recovery budget: a single invocation retrying this many times
/// after `NodeCrashed` triggers a dump.
const DEFAULT_RECOVERY_BUDGET: u32 = 8;

/// One noteworthy occurrence (fault injection, audit violation, panic, …).
#[derive(Debug, Clone)]
pub struct Incident {
    /// Virtual time the incident was noted.
    pub at: Duration,
    /// Short machine-readable kind (`"audit_violation"`, `"panic"`, …).
    pub kind: String,
    /// Free-form human detail.
    pub detail: String,
}

struct FlightInner {
    tracer: Option<Rc<Tracer>>,
    anatomy: Option<Rc<Anatomy>>,
    incidents: Vec<Incident>,
    incident_cap: usize,
    incidents_dropped: u64,
    events_per_lane: usize,
    recovery_budget: u32,
    dump_path: Option<PathBuf>,
    last_dump: Option<String>,
    dumps: u64,
}

/// The recorder itself. Construct with [`FlightRecorder::new`], attach the
/// session's tracer/anatomy handles, and call [`FlightRecorder::trigger`]
/// from failure detectors.
pub struct FlightRecorder {
    inner: RefCell<FlightInner>,
}

impl FlightRecorder {
    /// New recorder with default capacities and recovery budget.
    pub fn new() -> Rc<FlightRecorder> {
        Rc::new(FlightRecorder {
            inner: RefCell::new(FlightInner {
                tracer: None,
                anatomy: None,
                incidents: Vec::new(),
                incident_cap: DEFAULT_INCIDENT_CAPACITY,
                incidents_dropped: 0,
                events_per_lane: DEFAULT_EVENTS_PER_LANE,
                recovery_budget: DEFAULT_RECOVERY_BUDGET,
                dump_path: None,
                last_dump: None,
                dumps: 0,
            }),
        })
    }

    /// Attach the tracer whose lane rings should appear in dumps.
    pub fn attach_tracer(&self, tracer: Rc<Tracer>) {
        self.inner.borrow_mut().tracer = Some(tracer);
    }

    /// Attach the anatomy collector whose stamp rows should appear in dumps.
    pub fn attach_anatomy(&self, anatomy: Rc<Anatomy>) {
        self.inner.borrow_mut().anatomy = Some(anatomy);
    }

    /// Also write every dump to `path` (JSONL, overwritten per dump).
    pub fn set_dump_path(&self, path: PathBuf) {
        self.inner.borrow_mut().dump_path = Some(path);
    }

    /// Retry-attempt budget after which `NodeCrashed` recovery triggers a
    /// dump.
    pub fn recovery_budget(&self) -> u32 {
        self.inner.borrow().recovery_budget
    }

    /// Override the recovery-attempt budget.
    pub fn set_recovery_budget(&self, budget: u32) {
        self.inner.borrow_mut().recovery_budget = budget.max(1);
    }

    /// Note an incident in the bounded incident ring (no dump).
    pub fn note(&self, at: Duration, kind: &str, detail: String) {
        let mut inner = self.inner.borrow_mut();
        if inner.incidents.len() == inner.incident_cap {
            inner.incidents.remove(0);
            inner.incidents_dropped += 1;
        }
        inner.incidents.push(Incident {
            at,
            kind: kind.to_string(),
            detail,
        });
    }

    /// Record the triggering incident, assemble the black-box dump, retain
    /// it, optionally write it to the configured path, and return it.
    ///
    /// Dump layout (JSONL): one `flightrec` header line, the incident ring,
    /// the last `events_per_lane` trace events from every lane, then the
    /// retained anatomy stamp rows — all in deterministic order.
    pub fn trigger(&self, at: Duration, kind: &str, detail: String) -> String {
        self.note(at, kind, detail);
        let mut inner = self.inner.borrow_mut();
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"flightrec\":\"dump\",\"at_ns\":{},\"trigger\":\"{}\"}}\n",
            at.as_nanos(),
            escape(kind),
        ));
        for inc in &inner.incidents {
            out.push_str(&format!(
                "{{\"incident\":\"{}\",\"at_ns\":{},\"detail\":\"{}\"}}\n",
                escape(&inc.kind),
                inc.at.as_nanos(),
                escape(&inc.detail),
            ));
        }
        if let Some(tracer) = &inner.tracer {
            for e in tracer.recent_events(inner.events_per_lane) {
                out.push_str(&format!(
                    "{{\"event\":\"{}\",\"seq\":{},\"at_ns\":{},\"lane\":\"{}\",\
                     \"trace\":{},\"span\":{},\"ph\":\"{}\",\"detail\":\"{}\"}}\n",
                    e.name,
                    e.seq,
                    e.at.as_nanos(),
                    Lane::label(e.lane),
                    e.trace.0,
                    e.span.0,
                    e.phase.code(),
                    escape(&e.detail),
                ));
            }
        }
        if let Some(anatomy) = &inner.anatomy {
            for row in anatomy.recent_rows() {
                out.push_str(&row.to_json());
                out.push('\n');
            }
        }
        if let Some(path) = &inner.dump_path {
            // Best-effort: a failing dump write must not mask the original
            // failure being post-mortemed.
            let _ = std::fs::write(path, &out);
        }
        inner.last_dump = Some(out.clone());
        inner.dumps += 1;
        out
    }

    /// The most recent dump, if any was triggered.
    pub fn last_dump(&self) -> Option<String> {
        self.inner.borrow().last_dump.clone()
    }

    /// Number of dumps triggered so far.
    pub fn dumps(&self) -> u64 {
        self.inner.borrow().dumps
    }

    /// Incidents noted so far (clone of the bounded ring).
    pub fn incidents(&self) -> Vec<Incident> {
        self.inner.borrow().incidents.clone()
    }

    /// Run `f`, dumping the black box if it panics before propagating the
    /// panic. `at` is the virtual time to stamp on the dump (the recorder
    /// itself has no clock). Useful around chaos campaign bodies where a
    /// panic would otherwise discard all in-memory forensics.
    pub fn on_panic<R>(self: &Rc<Self>, at: Duration, f: impl FnOnce() -> R) -> R {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
            Ok(r) => r,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                self.trigger(at, "panic", msg);
                std::panic::resume_unwind(payload);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anatomy::Phase;
    use crate::trace::SpanId;

    fn t(ms: u64) -> Duration {
        Duration::from_millis(ms)
    }

    #[test]
    fn dump_includes_incidents_events_and_stamps() {
        let fr = FlightRecorder::new();
        let tracer = Tracer::new();
        let trace = tracer.new_trace();
        let s = tracer.span_begin(
            crate::trace::Lane::Node(0),
            t(1),
            trace,
            SpanId::NONE,
            "attempt",
            String::new(),
        );
        tracer.span_end(crate::trace::Lane::Node(0), t(2), trace, s);
        let anatomy = Anatomy::new();
        let sheet = anatomy.open_sheet(t(0));
        sheet.switch(t(1), Phase::Execution);
        anatomy.complete(t(2), &sheet);
        fr.attach_tracer(tracer);
        fr.attach_anatomy(anatomy);
        fr.note(t(1), "fault_injected", "node 3 crash".to_string());
        let dump = fr.trigger(t(3), "audit_violation", "duplicate effect".to_string());
        assert!(dump.starts_with("{\"flightrec\":\"dump\""), "{dump}");
        assert!(dump.contains("\"incident\":\"fault_injected\""), "{dump}");
        assert!(dump.contains("\"incident\":\"audit_violation\""), "{dump}");
        assert!(dump.contains("\"event\":\"attempt\""), "{dump}");
        assert!(dump.contains("\"phases\":{"), "{dump}");
        assert_eq!(fr.dumps(), 1);
        assert_eq!(fr.last_dump().unwrap(), dump);
    }

    #[test]
    fn on_panic_dumps_then_propagates() {
        let fr = FlightRecorder::new();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            fr.on_panic(t(9), || panic!("boom at step 4"));
        }));
        assert!(caught.is_err());
        let dump = fr.last_dump().expect("panic should have dumped");
        assert!(dump.contains("\"trigger\":\"panic\""), "{dump}");
        assert!(dump.contains("boom at step 4"), "{dump}");
    }

    #[test]
    fn incident_ring_is_bounded() {
        let fr = FlightRecorder::new();
        for i in 0..(DEFAULT_INCIDENT_CAPACITY as u64 + 10) {
            fr.note(t(i), "tick", String::new());
        }
        assert_eq!(fr.incidents().len(), DEFAULT_INCIDENT_CAPACITY);
    }
}
