//! Workload samplers: Zipf key popularity, Poisson arrivals, Bernoulli
//! crash trials.
//!
//! The evaluation populates 10 K objects and targets them with uniform or
//! skewed popularity; requests arrive open-loop following a Poisson process
//! (§4.6 assumes Poisson arrivals for the storage analysis). `rand_distr`
//! is outside the approved dependency set, so the samplers are implemented
//! here directly.

use rand::{Rng, RngExt};

/// Zipf-distributed sampler over `{0, 1, …, n-1}` with exponent `s`.
///
/// Uses the classic inverse-CDF-over-precomputed-weights approach: exact,
/// O(log n) per sample, deterministic given the RNG. An exponent of 0 makes
/// it uniform.
#[derive(Clone, Debug)]
pub struct Zipf {
    /// Cumulative normalized weights, ascending; `cdf[n-1] == 1.0`.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a Zipf sampler over `n` items with exponent `s ≥ 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s < 0`.
    #[must_use]
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one item");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 1..=n {
            total += (rank as f64).powf(-s);
            cdf.push(total);
        }
        for w in &mut cdf {
            *w /= total;
        }
        // Guard against floating-point shortfall at the top end.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf }
    }

    /// Number of items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false; a Zipf over zero items cannot be constructed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws one item index in `[0, n)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        // partition_point returns the first index with cdf[i] >= u.
        self.cdf.partition_point(|&w| w < u).min(self.cdf.len() - 1)
    }
}

/// Draws an exponential inter-arrival gap for a Poisson process with the
/// given rate (events per second). Returns seconds.
pub fn exp_interarrival_secs<R: Rng + ?Sized>(rng: &mut R, rate_per_sec: f64) -> f64 {
    assert!(rate_per_sec > 0.0, "arrival rate must be positive");
    let u: f64 = rng.random();
    // Map u in [0,1) to (0,1] to avoid ln(0).
    -(1.0 - u).ln() / rate_per_sec
}

/// One Bernoulli trial with probability `p`.
pub fn bernoulli<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    debug_assert!((0.0..=1.0).contains(&p));
    p > 0.0 && rng.random::<f64>() < p
}

#[cfg(test)]
mod tests {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    use super::*;

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(4, 0.0);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / 40_000.0;
            assert!((frac - 0.25).abs() < 0.02, "uniform fraction off: {frac}");
        }
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let z = Zipf::new(100, 1.0);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut head = 0usize;
        const N: usize = 50_000;
        for _ in 0..N {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // Under Zipf(1.0) over 100 items, the top-10 mass is ~56%.
        let frac = head as f64 / N as f64;
        assert!(frac > 0.5, "expected head-heavy distribution, got {frac}");
    }

    #[test]
    fn zipf_single_item() {
        let z = Zipf::new(1, 1.5);
        let mut rng = SmallRng::seed_from_u64(3);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.len(), 1);
    }

    #[test]
    fn exponential_gap_mean_matches_rate() {
        let mut rng = SmallRng::seed_from_u64(4);
        let rate = 200.0;
        let n = 50_000;
        let total: f64 = (0..n).map(|_| exp_interarrival_secs(&mut rng, rate)).sum();
        let mean = total / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.0005, "mean gap {mean}");
    }

    #[test]
    fn bernoulli_edges() {
        let mut rng = SmallRng::seed_from_u64(5);
        assert!(!bernoulli(&mut rng, 0.0));
        assert!(bernoulli(&mut rng, 1.0));
    }
}
