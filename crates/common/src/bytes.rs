//! Shared, cheaply-clonable byte buffers for zero-copy payload handoff.
//!
//! Halfmoon's hot path moves whole read values through the log (§6.3: the
//! read log carries the value, the write log only metadata). In a real
//! deployment those bytes are written once by the function runtime and then
//! referenced — never re-copied — by the sequencer batch, the storage
//! replica, the node cache, and any replayer. [`SharedBytes`] gives the
//! simulation the same ownership model: one heap buffer behind a refcount,
//! with O(1) clone and O(1) subslicing, so `Payload::clone` on a
//! value-carrying record is a pointer bump end to end (DESIGN.md §15).
//!
//! Single-threaded by design, like every shared structure in the
//! simulation: the backing refcount is [`Rc`], the in-process analog of the
//! `Arc<[u8]>` a multi-core backend would use.

use std::fmt;
use std::rc::Rc;

/// A refcounted, immutable byte slice: `Rc<[u8]>` plus a window.
///
/// Cloning bumps the refcount; [`SharedBytes::slice`] narrows the window
/// without touching the buffer. Equality is by content (two buffers with
/// the same bytes compare equal); [`SharedBytes::ptr_eq`] distinguishes
/// *sharing*, which the refcount tests rely on.
#[derive(Clone)]
pub struct SharedBytes {
    buf: Rc<[u8]>,
    start: usize,
    len: usize,
}

impl SharedBytes {
    /// Copies `bytes` into a fresh shared buffer (the one copy a payload
    /// ever pays; every later handoff is a refcount bump).
    #[must_use]
    pub fn copy_from(bytes: &[u8]) -> SharedBytes {
        SharedBytes {
            buf: Rc::from(bytes),
            start: 0,
            len: bytes.len(),
        }
    }

    /// Wraps an owned buffer without copying.
    #[must_use]
    pub fn from_vec(bytes: Vec<u8>) -> SharedBytes {
        let len = bytes.len();
        SharedBytes {
            buf: Rc::from(bytes),
            start: 0,
            len,
        }
    }

    /// An empty buffer (no allocation).
    #[must_use]
    pub fn empty() -> SharedBytes {
        SharedBytes {
            buf: Rc::from(&[][..]),
            start: 0,
            len: 0,
        }
    }

    /// Logical length of this view in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the view is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The viewed bytes.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.start..self.start + self.len]
    }

    /// O(1) subslice sharing the same buffer. Panics if the range exceeds
    /// this view.
    #[must_use]
    pub fn slice(&self, start: usize, len: usize) -> SharedBytes {
        assert!(
            start.checked_add(len).is_some_and(|end| end <= self.len),
            "slice [{start}, {start}+{len}) out of bounds of view of {} bytes",
            self.len
        );
        SharedBytes {
            buf: self.buf.clone(),
            start: self.start + start,
            len,
        }
    }

    /// True if both views share one backing buffer (regardless of window).
    #[must_use]
    pub fn ptr_eq(&self, other: &SharedBytes) -> bool {
        Rc::ptr_eq(&self.buf, &other.buf)
    }

    /// Number of live views of the backing buffer.
    #[must_use]
    pub fn ref_count(&self) -> usize {
        Rc::strong_count(&self.buf)
    }

    /// Content fingerprint (FNV-1a over the viewed bytes).
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        crate::ids::fnv1a(self.as_slice())
    }
}

impl PartialEq for SharedBytes {
    fn eq(&self, other: &SharedBytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for SharedBytes {}

impl fmt::Debug for SharedBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bytes[{}B;{:x}]", self.len, self.fingerprint())
    }
}

impl From<&[u8]> for SharedBytes {
    fn from(bytes: &[u8]) -> SharedBytes {
        SharedBytes::copy_from(bytes)
    }
}

impl From<Vec<u8>> for SharedBytes {
    fn from(bytes: Vec<u8>) -> SharedBytes {
        SharedBytes::from_vec(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_the_buffer() {
        let a = SharedBytes::copy_from(b"hello shared world");
        let b = a.clone();
        assert!(a.ptr_eq(&b));
        assert_eq!(a, b);
        assert_eq!(a.ref_count(), 2);
        drop(b);
        assert_eq!(a.ref_count(), 1);
    }

    #[test]
    fn slicing_is_zero_copy() {
        let a = SharedBytes::copy_from(b"hello shared world");
        let mid = a.slice(6, 6);
        assert_eq!(mid.as_slice(), b"shared");
        assert!(mid.ptr_eq(&a));
        let nested = mid.slice(0, 3);
        assert_eq!(nested.as_slice(), b"sha");
        assert!(nested.ptr_eq(&a));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_bounds_checked() {
        let a = SharedBytes::copy_from(b"abc");
        let _ = a.slice(2, 2);
    }

    #[test]
    fn equality_is_by_content() {
        let a = SharedBytes::copy_from(b"same");
        let b = SharedBytes::copy_from(b"same");
        assert_eq!(a, b);
        assert!(!a.ptr_eq(&b));
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn empty_is_allocation_free_to_clone() {
        let e = SharedBytes::empty();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert_eq!(e.as_slice(), b"");
    }
}
