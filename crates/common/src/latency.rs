//! Calibrated latency distributions for the simulated infrastructure.
//!
//! The paper's Table 1 reports median and 99th-percentile latencies for
//! Boki's log, read, and write operations against DynamoDB. We model each
//! primitive operation as a log-normal random variable fitted to a
//! (median, p99) pair: if `m` is the median and `q` the p99 then
//! `mu = ln m` and `sigma = ln(q/m) / z_99` with `z_99 ≈ 2.3263`.
//! Log-normals are the standard fit for storage-service latency because the
//! body is tight and the tail is heavy — exactly the shape Table 1 shows.
//!
//! The derivation of every constant is in `DESIGN.md` §4.

use std::time::Duration;

use rand::{Rng, RngExt};

/// The z-score of the 99th percentile of the standard normal distribution.
const Z99: f64 = 2.326_347_874_040_841;

/// A log-normal latency distribution fitted to a (median, p99) pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LogNormalLatency {
    mu: f64,
    sigma: f64,
}

impl LogNormalLatency {
    /// Fits a log-normal to the given median and 99th percentile, both in
    /// milliseconds. `p99_ms` must be at least `median_ms`.
    #[must_use]
    pub fn fit_ms(median_ms: f64, p99_ms: f64) -> LogNormalLatency {
        assert!(median_ms > 0.0, "median must be positive");
        assert!(p99_ms >= median_ms, "p99 must not be below the median");
        LogNormalLatency {
            mu: median_ms.ln(),
            sigma: (p99_ms / median_ms).ln() / Z99,
        }
    }

    /// A degenerate (constant) latency, useful in tests.
    #[must_use]
    pub fn constant_ms(ms: f64) -> LogNormalLatency {
        assert!(ms > 0.0);
        LogNormalLatency {
            mu: ms.ln(),
            sigma: 0.0,
        }
    }

    /// The distribution's median in milliseconds.
    #[must_use]
    pub fn median_ms(&self) -> f64 {
        self.mu.exp()
    }

    /// The distribution's 99th percentile in milliseconds.
    #[must_use]
    pub fn p99_ms(&self) -> f64 {
        (self.mu + Z99 * self.sigma).exp()
    }

    /// Draws one latency sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Duration {
        let z = sample_standard_normal(rng);
        let ms = (self.mu + self.sigma * z).exp();
        duration_from_ms(ms)
    }

    /// Scales the whole distribution by a multiplicative factor (both the
    /// median and the p99 scale together).
    #[must_use]
    pub fn scaled(&self, factor: f64) -> LogNormalLatency {
        assert!(factor > 0.0);
        LogNormalLatency {
            mu: self.mu + factor.ln(),
            sigma: self.sigma,
        }
    }
}

/// Converts fractional milliseconds to a `Duration` with nanosecond
/// resolution, clamped to at least 1 ns so simulated operations always take
/// nonzero virtual time (zero-duration ops could starve the event loop).
#[must_use]
pub fn duration_from_ms(ms: f64) -> Duration {
    let nanos = (ms * 1_000_000.0).max(1.0);
    Duration::from_nanos(nanos as u64)
}

/// Draws a standard normal via the Box–Muller transform.
///
/// `rand` deliberately ships only uniform primitives; the normal lives in
/// `rand_distr`, which is outside the approved dependency set, so we
/// implement the two-line classic ourselves.
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random();
        let u2: f64 = rng.random();
        if u1 > f64::EPSILON {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// Latency model for every primitive operation in the simulated testbed.
///
/// The benchmark harness composes protocol-level operations (e.g. a Boki
/// write = two log appends + one conditional DB write) out of these
/// primitives; see `DESIGN.md` §4 for the calibration table.
#[derive(Clone, Copy, Debug)]
pub struct LatencyModel {
    /// Shared-log append acknowledged by a storage quorum (Table 1 "Log").
    pub log_append: LogNormalLatency,
    /// `logReadPrev`/`logReadNext` served from the function node's record
    /// cache (§4.1 quotes 0.12 ms median / 0.72 ms p99 from Boki).
    pub log_read_cached: LogNormalLatency,
    /// `logReadPrev`/`logReadNext` that must fetch from a storage node.
    pub log_read_miss: LogNormalLatency,
    /// Raw (unconditional) DynamoDB read.
    pub db_read: LogNormalLatency,
    /// Multi-version read (composite-key fetch): slightly above a raw read
    /// because the version pointer adds an index indirection.
    pub db_version_read: LogNormalLatency,
    /// Raw (unconditional) DynamoDB write.
    pub db_write: LogNormalLatency,
    /// Conditional DynamoDB update (version comparison server-side); the
    /// paper notes it is more expensive than a direct update (§6.1).
    pub db_cond_write: LogNormalLatency,
    /// One gateway/function-node RPC hop (invocation dispatch, response).
    pub rpc_hop: LogNormalLatency,
    /// Pure compute time an SSF spends between state operations.
    pub function_compute: LogNormalLatency,
}

impl LatencyModel {
    /// The calibrated model derived from the paper (see `DESIGN.md` §4).
    #[must_use]
    pub fn calibrated() -> LatencyModel {
        LatencyModel {
            log_append: LogNormalLatency::fit_ms(1.18, 1.91),
            log_read_cached: LogNormalLatency::fit_ms(0.12, 0.72),
            log_read_miss: LogNormalLatency::fit_ms(0.35, 1.20),
            // Table 1 decomposition: a Boki read (1.88 ms) is one raw read
            // plus one log append (1.18 ms = 63% of it), so the raw read is
            // 0.70 ms; likewise the raw write is 2.47 - 1.18 = 1.29 ms.
            db_read: LogNormalLatency::fit_ms(0.70, 2.70),
            db_version_read: LogNormalLatency::fit_ms(0.80, 3.10),
            db_write: LogNormalLatency::fit_ms(1.29, 3.95),
            db_cond_write: LogNormalLatency::fit_ms(1.73, 4.60),
            rpc_hop: LogNormalLatency::fit_ms(0.25, 1.00),
            function_compute: LogNormalLatency::fit_ms(0.10, 0.30),
        }
    }

    /// A fast constant-latency model for unit tests (keeps virtual time
    /// deterministic and simple to reason about).
    #[must_use]
    pub fn uniform_test_model() -> LatencyModel {
        LatencyModel {
            log_append: LogNormalLatency::constant_ms(1.0),
            log_read_cached: LogNormalLatency::constant_ms(0.1),
            log_read_miss: LogNormalLatency::constant_ms(0.3),
            db_read: LogNormalLatency::constant_ms(1.0),
            db_version_read: LogNormalLatency::constant_ms(1.0),
            db_write: LogNormalLatency::constant_ms(1.5),
            db_cond_write: LogNormalLatency::constant_ms(1.7),
            rpc_hop: LogNormalLatency::constant_ms(0.2),
            function_compute: LogNormalLatency::constant_ms(0.1),
        }
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    use super::*;

    #[test]
    fn fit_recovers_median_and_p99() {
        let d = LogNormalLatency::fit_ms(1.18, 1.91);
        assert!((d.median_ms() - 1.18).abs() < 1e-9);
        assert!((d.p99_ms() - 1.91).abs() < 1e-9);
    }

    #[test]
    fn constant_distribution_has_no_spread() {
        let d = LogNormalLatency::constant_ms(2.0);
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..16 {
            let s = d.sample(&mut rng);
            let ms = s.as_secs_f64() * 1e3;
            assert!((ms - 2.0).abs() < 1e-6, "expected 2ms, got {ms}");
        }
    }

    #[test]
    fn empirical_quantiles_match_fit() {
        let d = LogNormalLatency::fit_ms(1.0, 3.0);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut samples: Vec<f64> = (0..40_000)
            .map(|_| d.sample(&mut rng).as_secs_f64() * 1e3)
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let p99 = samples[(samples.len() as f64 * 0.99) as usize];
        assert!((median - 1.0).abs() < 0.05, "median {median}");
        assert!((p99 - 3.0).abs() < 0.25, "p99 {p99}");
    }

    #[test]
    fn scaling_moves_both_quantiles() {
        let d = LogNormalLatency::fit_ms(1.0, 2.0).scaled(3.0);
        assert!((d.median_ms() - 3.0).abs() < 1e-9);
        assert!((d.p99_ms() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn duration_from_ms_clamps_to_one_nano() {
        assert_eq!(duration_from_ms(0.0), Duration::from_nanos(1));
        assert_eq!(duration_from_ms(1.0), Duration::from_millis(1));
    }

    #[test]
    #[should_panic(expected = "p99 must not be below the median")]
    fn fit_rejects_inverted_quantiles() {
        let _ = LogNormalLatency::fit_ms(2.0, 1.0);
    }
}
