//! Shared vocabulary for the Halfmoon reproduction.
//!
//! This crate holds the types every other crate speaks: identifier newtypes
//! ([`SeqNum`], [`Tag`], [`InstanceId`]), the dynamic [`Value`] payload type
//! exchanged between serverless functions, error types, calibrated latency
//! models ([`latency::LatencyModel`]), workload samplers ([`dist`]), and the
//! metrics primitives used by the benchmark harness ([`metrics`]).
//!
//! Nothing in this crate knows about the simulator, the shared log, or the
//! protocols; it is the dependency root of the workspace.

pub mod anatomy;
pub mod bytes;
pub mod collections;
pub mod dist;
pub mod error;
pub mod flightrec;
pub mod ids;
pub mod latency;
pub mod metrics;
pub mod trace;
pub mod value;

pub use bytes::SharedBytes;
pub use collections::{FxHashMap, FxHashSet, LruSet, TagSet};
pub use error::{HmError, HmResult};
pub use ids::{InstanceId, Key, NodeId, SeqNum, StepNum, Tag, VersionNum, VersionTuple};
pub use value::Value;
