//! Identifier newtypes used across the workspace.
//!
//! The paper parameterizes every operation by its position in the event
//! stream. [`SeqNum`] is the shared log's monotonically increasing sequence
//! number; [`Tag`] names a log sub-stream; [`InstanceId`] identifies a group
//! of concurrent function instances serving the same SSF invocation (§4,
//! "Race conditions"); [`VersionTuple`] is Halfmoon-write's
//! `(cursorTS, consecutiveW)` version number (§4.2).

use std::fmt;

/// A sequence number assigned by the shared log's sequencer.
///
/// Seqnums are totally ordered and define the event stream that both
/// Halfmoon protocols parameterize reads and writes against.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SeqNum(pub u64);

impl SeqNum {
    /// The smallest seqnum; no record ever carries it, so it can serve as an
    /// "arbitrarily out-of-date" initial cursor (§4.3 remark).
    pub const ZERO: SeqNum = SeqNum(0);
    /// A seqnum larger than any the sequencer will assign; used as the upper
    /// bound when seeking the newest record of a stream.
    pub const MAX: SeqNum = SeqNum(u64::MAX);

    /// The next seqnum. Saturates at [`SeqNum::MAX`].
    #[must_use]
    pub fn next(self) -> SeqNum {
        SeqNum(self.0.saturating_add(1))
    }
}

impl fmt::Debug for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sn{}", self.0)
    }
}

impl fmt::Display for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A log sub-stream tag (Figure 3).
///
/// The main log is logically divided into sub-streams of records sharing a
/// tag; a record may carry several tags and thus appear in several
/// sub-streams. Tags are constructed from a namespace discriminant plus a
/// 64-bit hash of the name so that step logs, per-object write logs, and
/// transition logs can never collide.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tag(pub u64);

/// Namespaces for [`Tag`] construction. Each kind gets 3 bits of the tag
/// space so that streams of different kinds never alias.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum TagKind {
    /// Per-SSF step log, keyed by [`InstanceId`].
    StepLog = 1,
    /// Per-object write log (Halfmoon-read), keyed by object key.
    ObjectLog = 2,
    /// Per-object protocol transition log (§4.7).
    TransitionLog = 3,
    /// Global stream of SSF init records, scanned by the GC (§4.5).
    InitLog = 4,
    /// Global stream of SSF finish records, scanned by the GC (§4.5).
    FinishLog = 5,
}

impl Tag {
    /// Builds a tag in the given namespace from a pre-hashed 61-bit value.
    #[must_use]
    pub fn new(kind: TagKind, hash: u64) -> Tag {
        Tag(((kind as u64) << 61) | (hash & ((1 << 61) - 1)))
    }

    /// Builds a tag by hashing a string name (FNV-1a, stable across runs).
    #[must_use]
    pub fn named(kind: TagKind, name: &str) -> Tag {
        Tag::new(kind, fnv1a(name.as_bytes()))
    }

    /// The namespace this tag belongs to, if the discriminant is valid.
    #[must_use]
    pub fn kind(self) -> Option<TagKind> {
        match self.0 >> 61 {
            1 => Some(TagKind::StepLog),
            2 => Some(TagKind::ObjectLog),
            3 => Some(TagKind::TransitionLog),
            4 => Some(TagKind::InitLog),
            5 => Some(TagKind::FinishLog),
            _ => None,
        }
    }
}

impl fmt::Debug for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind() {
            Some(k) => write!(f, "tag:{:?}:{:x}", k, self.0 & ((1 << 61) - 1)),
            None => write!(f, "tag:{:x}", self.0),
        }
    }
}

/// Stable FNV-1a hash used for tag and key hashing.
///
/// We roll our own instead of `DefaultHasher` because the standard hasher is
/// explicitly unstable across releases, and tags must be reproducible for
/// deterministic simulation replays.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Identifier shared by all concurrent instances of one SSF invocation.
///
/// The paper calls this `instanceID` / `env.ID` (§4): a re-executed SSF and
/// any live peer instances use the same id and therefore the same step-log
/// stream.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstanceId(pub u128);

impl InstanceId {
    /// Derives the deterministic child id for step `step` of this instance,
    /// mirroring `getUUID(env)` in Figure 5: the callee's id is a pure
    /// function of the caller's id and the step number.
    #[must_use]
    pub fn child(self, step: StepNum) -> InstanceId {
        // Mix with two rounds of splitmix-style finalization for dispersion.
        let mut x = self.0 ^ (u128::from(step.0) << 64 | 0x9e37_79b9_7f4a_7c15);
        x ^= x >> 67;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9_94d0_49bb_1331_11eb);
        x ^= x >> 59;
        InstanceId(x)
    }

    /// The step-log tag of this instance (the per-SSF log stream).
    #[must_use]
    pub fn step_log_tag(self) -> Tag {
        Tag::new(TagKind::StepLog, (self.0 as u64) ^ ((self.0 >> 64) as u64))
    }
}

impl fmt::Debug for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inst:{:08x}", (self.0 as u32))
    }
}

/// A function node in the simulated cluster (the paper's setup has eight).
///
/// Log reads are served from a per-node record cache when possible (§4.1),
/// so the shared-log APIs take the calling node to decide hit vs. miss.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct NodeId(pub u32);

/// A 0-based step counter within one SSF execution (Figure 5's `env.step`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct StepNum(pub u32);

impl StepNum {
    /// The next step.
    #[must_use]
    pub fn next(self) -> StepNum {
        StepNum(self.0 + 1)
    }
}

impl fmt::Debug for StepNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "step{}", self.0)
    }
}

/// An object key in the external state store.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key(pub String);

impl Key {
    /// Builds a key from anything string-like.
    pub fn new(s: impl Into<String>) -> Key {
        Key(s.into())
    }

    /// The per-object write-log tag (Halfmoon-read, §4.1).
    #[must_use]
    pub fn object_log_tag(&self) -> Tag {
        Tag::named(TagKind::ObjectLog, &self.0)
    }

    /// The per-object transition-log tag (§4.7).
    #[must_use]
    pub fn transition_log_tag(&self) -> Tag {
        Tag::named(TagKind::TransitionLog, &self.0)
    }

    /// Approximate stored size of the key in bytes (storage accounting).
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.0.len()
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "key:{}", self.0)
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Key {
    fn from(s: &str) -> Key {
        Key::new(s)
    }
}

impl From<String> for Key {
    fn from(s: String) -> Key {
        Key(s)
    }
}

/// An opaque multi-version object version number (Halfmoon-read, §4.1).
///
/// Version numbers are *unordered pointers*: the write log defines the order
/// between versions, the number itself only names a stored object copy.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct VersionNum(pub u64);

impl fmt::Debug for VersionNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{:x}", self.0)
    }
}

/// Halfmoon-write's ordered version tuple `(cursorTS, consecutiveW)` (§4.2).
///
/// The first field is the cursor timestamp at the last logged operation; the
/// second counts consecutive log-free writes since then and breaks ties
/// between them. Ordering is lexicographic, exactly as the paper defines.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VersionTuple {
    /// The SSF's cursor timestamp when the write was issued.
    pub cursor: SeqNum,
    /// Number of consecutive log-free writes since the last logged op.
    pub counter: u32,
}

impl VersionTuple {
    /// A tuple smaller than every tuple a protocol will generate, suitable
    /// as the initial stored version of a fresh object.
    pub const MIN: VersionTuple = VersionTuple {
        cursor: SeqNum(0),
        counter: 0,
    };

    /// Builds a version tuple.
    #[must_use]
    pub fn new(cursor: SeqNum, counter: u32) -> VersionTuple {
        VersionTuple { cursor, counter }
    }
}

impl fmt::Debug for VersionTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.cursor, self.counter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seqnum_ordering_and_next() {
        assert!(SeqNum(1) < SeqNum(2));
        assert_eq!(SeqNum(1).next(), SeqNum(2));
        assert_eq!(SeqNum::MAX.next(), SeqNum::MAX);
        assert!(SeqNum::ZERO < SeqNum(1));
    }

    #[test]
    fn tag_kinds_do_not_collide() {
        let a = Tag::named(TagKind::StepLog, "x");
        let b = Tag::named(TagKind::ObjectLog, "x");
        let c = Tag::named(TagKind::TransitionLog, "x");
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_eq!(a.kind(), Some(TagKind::StepLog));
        assert_eq!(b.kind(), Some(TagKind::ObjectLog));
        assert_eq!(c.kind(), Some(TagKind::TransitionLog));
    }

    #[test]
    fn tag_hash_is_stable() {
        // FNV-1a of "hello" is a fixed constant; pin it so replays stay stable.
        assert_eq!(fnv1a(b"hello"), 0xa430_d846_80aa_bd0b);
        assert_eq!(
            Tag::named(TagKind::ObjectLog, "k"),
            Tag::named(TagKind::ObjectLog, "k")
        );
    }

    #[test]
    fn instance_child_is_deterministic_and_disperse() {
        let id = InstanceId(42);
        assert_eq!(id.child(StepNum(3)), id.child(StepNum(3)));
        assert_ne!(id.child(StepNum(3)), id.child(StepNum(4)));
        assert_ne!(id.child(StepNum(3)), InstanceId(43).child(StepNum(3)));
    }

    #[test]
    fn version_tuple_order_is_lexicographic() {
        let a = VersionTuple::new(SeqNum(1), 5);
        let b = VersionTuple::new(SeqNum(2), 0);
        let c = VersionTuple::new(SeqNum(2), 1);
        assert!(a < b);
        assert!(b < c);
        assert!(VersionTuple::MIN < a);
    }

    #[test]
    fn key_tags_differ_between_objects() {
        let k1 = Key::new("hotel:1");
        let k2 = Key::new("hotel:2");
        assert_ne!(k1.object_log_tag(), k2.object_log_tag());
        assert_ne!(k1.object_log_tag(), k1.transition_log_tag());
    }
}
