//! Allocation-lean collection primitives for the simulator's hot paths.
//!
//! Three building blocks, all deterministic (no `RandomState`, no pointer
//! hashing), so replays of a seeded simulation touch memory identically:
//!
//! - [`TagSet`]: a record's tag list, stored inline for up to four tags
//!   (records almost always carry one to three) and spilled to the heap
//!   otherwise — the "interned tag set" replacing `Vec<Tag>` clones;
//! - [`FxHashMap`] / [`FxHashSet`]: hash containers using the Firefox
//!   `FxHash` function, far cheaper than SipHash for the integer keys the
//!   shared log indexes by (`Tag`, `SeqNum`, `NodeId`) and stable across
//!   runs and platforms;
//! - [`LruSet`]: a bounded membership set with least-recently-used
//!   eviction, backed by a slab and an intrusive doubly-linked list so
//!   `contains`/`insert`/evict are all O(1).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hash, Hasher};

use crate::ids::Tag;

/// Number of tags a [`TagSet`] holds without heap allocation.
const TAGSET_INLINE: usize = 4;

/// A record's tag list: inline up to [`TAGSET_INLINE`] entries, heap beyond.
///
/// Order and multiplicity are preserved exactly — a record appended with a
/// duplicated tag appears twice in that sub-stream, and the set must say so.
#[derive(Clone)]
pub struct TagSet {
    len: u32,
    inline: [Tag; TAGSET_INLINE],
    spill: Vec<Tag>,
}

impl TagSet {
    /// Builds a tag set from the caller's tag list, reusing the allocation
    /// when the list is too long to inline.
    #[must_use]
    pub fn from_vec(tags: Vec<Tag>) -> TagSet {
        if tags.len() <= TAGSET_INLINE {
            let mut inline = [Tag(0); TAGSET_INLINE];
            inline[..tags.len()].copy_from_slice(&tags);
            TagSet {
                len: tags.len() as u32,
                inline,
                spill: Vec::new(),
            }
        } else {
            TagSet {
                len: tags.len() as u32,
                inline: [Tag(0); TAGSET_INLINE],
                spill: tags,
            }
        }
    }

    /// The tags as a slice, in append order.
    #[must_use]
    pub fn as_slice(&self) -> &[Tag] {
        if self.len as usize <= TAGSET_INLINE {
            &self.inline[..self.len as usize]
        } else {
            &self.spill
        }
    }
}

impl std::ops::Deref for TagSet {
    type Target = [Tag];

    fn deref(&self) -> &[Tag] {
        self.as_slice()
    }
}

impl TagSet {
    /// Builds a tag set by copying from a slice — allocation-free for up
    /// to [`TAGSET_INLINE`] tags, which is every hot-path record. Callers
    /// holding a long-lived tag list should pass it as a slice instead of
    /// cloning a `Vec` per append.
    #[must_use]
    pub fn from_slice(tags: &[Tag]) -> TagSet {
        if tags.len() <= TAGSET_INLINE {
            let mut inline = [Tag(0); TAGSET_INLINE];
            inline[..tags.len()].copy_from_slice(tags);
            TagSet {
                len: tags.len() as u32,
                inline,
                spill: Vec::new(),
            }
        } else {
            TagSet {
                len: tags.len() as u32,
                inline: [Tag(0); TAGSET_INLINE],
                spill: tags.to_vec(),
            }
        }
    }
}

impl From<Vec<Tag>> for TagSet {
    fn from(tags: Vec<Tag>) -> TagSet {
        TagSet::from_vec(tags)
    }
}

impl From<&[Tag]> for TagSet {
    fn from(tags: &[Tag]) -> TagSet {
        TagSet::from_slice(tags)
    }
}

impl<const N: usize> From<[Tag; N]> for TagSet {
    fn from(tags: [Tag; N]) -> TagSet {
        TagSet::from_slice(&tags)
    }
}

impl FromIterator<Tag> for TagSet {
    fn from_iter<I: IntoIterator<Item = Tag>>(iter: I) -> TagSet {
        TagSet::from_vec(iter.into_iter().collect())
    }
}

impl PartialEq for TagSet {
    fn eq(&self, other: &TagSet) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for TagSet {}

impl std::fmt::Debug for TagSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

/// The FxHash multiplier (Firefox's `FxHasher`; a 64-bit odd constant close
/// to 2^64/φ, chosen for dispersion under `rotate ^ mul`).
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash: `hash = (hash.rotl(5) ^ word) * SEED` per machine word.
///
/// Not collision-resistant against adversaries — irrelevant here, where
/// keys are simulator-internal integers — but several times faster than
/// SipHash and, unlike `RandomState`, identical on every run.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail) | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add(v as u64);
        self.add((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// Deterministic FxHash builder for `HashMap`/`HashSet`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;
/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, FxBuildHasher>;

/// Sentinel index for "no node" in [`LruSet`]'s intrusive list.
const NIL: u32 = u32::MAX;

struct LruNode<K> {
    key: K,
    prev: u32,
    next: u32,
}

/// A bounded membership set with least-recently-used eviction.
///
/// [`LruSet::insert`] refreshes recency; [`LruSet::contains`] does not (a
/// caller that wants lookup-then-refresh calls both, like the shared log's
/// `pay_read`, which checks before the simulated read latency and inserts
/// after it). All operations are O(1): a slab of list nodes linked
/// most-recent-first plus an [`FxHashMap`] from key to slab index.
pub struct LruSet<K> {
    capacity: usize,
    map: FxHashMap<K, u32>,
    nodes: Vec<LruNode<K>>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    evictions: u64,
}

impl<K: Hash + Eq + Copy> LruSet<K> {
    /// Creates an empty set bounded to `capacity` keys (at least 1).
    ///
    /// Memory grows with actual occupancy, not with `capacity`, so a large
    /// bound costs nothing until used.
    #[must_use]
    pub fn new(capacity: usize) -> LruSet<K> {
        LruSet {
            capacity: capacity.max(1),
            map: FxHashMap::default(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            evictions: 0,
        }
    }

    /// Whether `key` is present. Does not refresh recency.
    #[must_use]
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Number of keys currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total keys evicted to make room since creation.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let n = &self.nodes[idx as usize];
            (n.prev, n.next)
        };
        if prev == NIL {
            self.head = next;
        } else {
            self.nodes[prev as usize].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.nodes[next as usize].prev = prev;
        }
    }

    fn push_front(&mut self, idx: u32) {
        let old_head = self.head;
        {
            let n = &mut self.nodes[idx as usize];
            n.prev = NIL;
            n.next = old_head;
        }
        if old_head != NIL {
            self.nodes[old_head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Inserts `key` as most-recently-used, evicting the least-recently-used
    /// key if the set is full. Returns `true` if the key was newly inserted,
    /// `false` if it was already present (its recency is refreshed).
    pub fn insert(&mut self, key: K) -> bool {
        if let Some(&idx) = self.map.get(&key) {
            self.unlink(idx);
            self.push_front(idx);
            return false;
        }
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.unlink(victim);
            let old_key = self.nodes[victim as usize].key;
            self.map.remove(&old_key);
            self.free.push(victim);
            self.evictions += 1;
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize].key = key;
                i
            }
            None => {
                let i = self.nodes.len() as u32;
                self.nodes.push(LruNode {
                    key,
                    prev: NIL,
                    next: NIL,
                });
                i
            }
        };
        self.push_front(idx);
        self.map.insert(key, idx);
        true
    }

    /// Drops every key at once (a cold restart of the cache's owner).
    /// The eviction counter is preserved: cleared keys were lost with
    /// their owner, not evicted to make room.
    pub fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

impl<K: Hash + Eq + Copy + std::fmt::Debug> std::fmt::Debug for LruSet<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "LruSet(len={}, capacity={}, evictions={})",
            self.map.len(),
            self.capacity,
            self.evictions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::TagKind;

    fn tag(i: u64) -> Tag {
        Tag::new(TagKind::ObjectLog, i)
    }

    #[test]
    fn tagset_inline_and_spill() {
        let small = TagSet::from_vec(vec![tag(1), tag(2)]);
        assert_eq!(small.len(), 2);
        assert_eq!(small[0], tag(1));
        assert!(small.contains(&tag(2)));
        let big: TagSet = (0..7).map(tag).collect();
        assert_eq!(big.len(), 7);
        assert_eq!(big[6], tag(6));
        assert_eq!(
            TagSet::from_vec(vec![tag(1), tag(2)]),
            TagSet::from_vec(vec![tag(1), tag(2)])
        );
        assert_ne!(
            TagSet::from_vec(vec![tag(2), tag(1)]),
            TagSet::from_vec(vec![tag(1), tag(2)]),
            "order is significant"
        );
        assert!(TagSet::from_vec(Vec::new()).is_empty());
    }

    #[test]
    fn tagset_preserves_duplicates() {
        let dup = TagSet::from_vec(vec![tag(5), tag(5)]);
        assert_eq!(dup.iter().filter(|&&t| t == tag(5)).count(), 2);
    }

    #[test]
    fn fxhash_is_stable_across_runs() {
        // Pinned value: determinism across builds is the whole point.
        let mut h = FxHasher::default();
        h.write_u64(0xdead_beef);
        assert_eq!(h.finish(), 0x67f3_c037_2953_771b);
        let mut h2 = FxHasher::default();
        h2.write(b"hello world"); // chunked path with a 3-byte tail
        let mut h3 = FxHasher::default();
        h3.write(b"hello world");
        assert_eq!(h2.finish(), h3.finish());
        assert_ne!(h2.finish(), 0);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut lru: LruSet<u64> = LruSet::new(3);
        assert!(lru.insert(1));
        assert!(lru.insert(2));
        assert!(lru.insert(3));
        // Refresh 1: now 2 is the oldest.
        assert!(!lru.insert(1));
        assert!(lru.insert(4));
        assert!(!lru.contains(&2), "2 was least recently used");
        assert!(lru.contains(&1) && lru.contains(&3) && lru.contains(&4));
        assert_eq!(lru.len(), 3);
        assert_eq!(lru.evictions(), 1);
    }

    #[test]
    fn lru_eviction_order_is_exact() {
        let mut lru: LruSet<u64> = LruSet::new(2);
        lru.insert(10);
        lru.insert(20);
        lru.insert(30); // evicts 10
        lru.insert(40); // evicts 20
        assert!(!lru.contains(&10) && !lru.contains(&20));
        assert!(lru.contains(&30) && lru.contains(&40));
        assert_eq!(lru.evictions(), 2);
    }

    #[test]
    fn lru_capacity_one_and_reuse() {
        let mut lru: LruSet<u64> = LruSet::new(1);
        for i in 0..50 {
            lru.insert(i);
            assert_eq!(lru.len(), 1);
            assert!(lru.contains(&i));
        }
        assert_eq!(lru.evictions(), 49);
        // Slab slots are recycled, not leaked.
        assert!(lru.nodes.len() <= 2);
    }

    #[test]
    fn lru_contains_does_not_refresh() {
        let mut lru: LruSet<u64> = LruSet::new(2);
        lru.insert(1);
        lru.insert(2);
        assert!(lru.contains(&1)); // must NOT make 1 recent
        lru.insert(3); // evicts 1, the LRU key
        assert!(!lru.contains(&1));
        assert!(lru.contains(&2));
    }
}
