//! Property-based tests of the shared primitives: histogram quantile
//! accuracy, log-normal fitting, version-tuple ordering, Zipf support, and
//! value fingerprint stability.
//!
//! The environment has no proptest, so each property runs as a seeded-RNG
//! case loop: inputs derive from a fixed base seed plus the case index, so
//! failures reproduce exactly and every run explores the same cases.

use std::time::Duration;

use hm_common::dist::Zipf;
use hm_common::latency::LogNormalLatency;
use hm_common::metrics::{Histogram, TimeWeightedGauge};
use hm_common::{SeqNum, Value, VersionTuple};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Runs `body` for `cases` deterministic cases, handing each its own RNG.
fn for_cases(base_seed: u64, cases: u64, mut body: impl FnMut(u64, &mut SmallRng)) {
    for case in 0..cases {
        let mut rng = SmallRng::seed_from_u64(base_seed.wrapping_mul(0x9e37).wrapping_add(case));
        body(case, &mut rng);
    }
}

/// The histogram's quantiles are within its documented relative error of
/// the exact empirical quantiles, for arbitrary samples.
#[test]
fn histogram_quantiles_bounded_error() {
    for_cases(0x1157, 128, |case, rng| {
        let len = rng.random_range(1usize..200);
        let mut samples: Vec<u64> = (0..len)
            .map(|_| rng.random_range(1_000u64..10_000_000_000))
            .collect();
        let q = rng.random_range(0.01f64..0.999);
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(Duration::from_nanos(s));
        }
        samples.sort_unstable();
        let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
        let exact = samples[rank - 1] as f64 / 1e6;
        let got = h.quantile_ms(q).unwrap();
        let rel = (got - exact).abs() / exact;
        assert!(rel < 0.03, "case {case}: q={q} exact={exact} got={got} rel={rel}");
    });
}

/// The extreme quantiles bracket the mean for arbitrary samples:
/// `quantile_ms(0.0) ≤ mean ≤ quantile_ms(1.0)`. This is only guaranteed
/// because q=0/q=1 return the exact raw extremes — bucket midpoints can
/// land on the wrong side of the mean when all samples share one bucket.
#[test]
fn histogram_extremes_bracket_mean() {
    for_cases(0x8e11, 256, |case, rng| {
        let len = rng.random_range(1usize..100);
        let mut h = Histogram::new();
        for _ in 0..len {
            h.record(Duration::from_nanos(rng.random_range(1_000u64..100_000_000_000)));
        }
        let lo = h.quantile_ms(0.0).unwrap();
        let mean = h.mean_ms().unwrap();
        let hi = h.quantile_ms(1.0).unwrap();
        assert!(lo <= mean, "case {case}: min {lo} > mean {mean}");
        assert!(mean <= hi, "case {case}: mean {mean} > max {hi}");
        assert_eq!(Some(lo), h.min_ms(), "case {case}");
        assert_eq!(Some(hi), h.max_ms(), "case {case}");
    });
}

/// Merging two histograms equals recording all samples into one.
#[test]
fn histogram_merge_equivalence() {
    for_cases(0x3e26, 128, |case, rng| {
        let a: Vec<u64> = (0..rng.random_range(0usize..60))
            .map(|_| rng.random_range(1_000u64..1_000_000_000))
            .collect();
        let b: Vec<u64> = (0..rng.random_range(0usize..60))
            .map(|_| rng.random_range(1_000u64..1_000_000_000))
            .collect();
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hall = Histogram::new();
        for &s in &a {
            ha.record(Duration::from_nanos(s));
            hall.record(Duration::from_nanos(s));
        }
        for &s in &b {
            hb.record(Duration::from_nanos(s));
            hall.record(Duration::from_nanos(s));
        }
        ha.merge(&hb);
        assert_eq!(ha.count(), hall.count(), "case {case}");
        if ha.count() > 0 {
            assert_eq!(ha.median_ms(), hall.median_ms(), "case {case}");
            assert_eq!(ha.p99_ms(), hall.p99_ms(), "case {case}");
        }
    });
}

/// Fitting recovers the requested quantiles for any valid pair.
#[test]
fn lognormal_fit_roundtrip() {
    for_cases(0x10f1, 128, |case, rng| {
        let median = rng.random_range(0.01f64..100.0);
        let ratio = rng.random_range(1.0f64..20.0);
        let d = LogNormalLatency::fit_ms(median, median * ratio);
        assert!(
            (d.median_ms() - median).abs() / median < 1e-9,
            "case {case}: median {median} got {}",
            d.median_ms()
        );
        assert!(
            (d.p99_ms() - median * ratio).abs() / (median * ratio) < 1e-9,
            "case {case}: p99 {} want {}",
            d.p99_ms(),
            median * ratio
        );
    });
}

/// Samples are always positive and finite.
#[test]
fn lognormal_samples_positive() {
    for_cases(0x70c1, 64, |case, rng| {
        let median = rng.random_range(0.01f64..50.0);
        let ratio = rng.random_range(1.0f64..10.0);
        let seed = rng.random_range(0u64..1000);
        let d = LogNormalLatency::fit_ms(median, median * ratio);
        let mut srng = SmallRng::seed_from_u64(seed);
        for _ in 0..32 {
            let s = d.sample(&mut srng);
            assert!(s > Duration::ZERO, "case {case}");
            assert!(s < Duration::from_secs(3600), "case {case}");
        }
    });
}

/// Version tuples order lexicographically: cursor first, counter second.
#[test]
fn version_tuple_lexicographic() {
    for_cases(0x5e40, 256, |case, rng| {
        let a: (u64, u32) = (rng.random(), rng.random());
        // Mix in near-misses so equal-cursor cases actually occur.
        let b: (u64, u32) = if rng.random_bool(0.3) {
            (a.0, rng.random())
        } else {
            (rng.random(), rng.random())
        };
        let va = VersionTuple::new(SeqNum(a.0), a.1);
        let vb = VersionTuple::new(SeqNum(b.0), b.1);
        assert_eq!(va.cmp(&vb), a.cmp(&b), "case {case}: {a:?} vs {b:?}");
    });
}

/// Zipf sampling always lands in range and is deterministic per seed.
#[test]
fn zipf_in_range_and_deterministic() {
    for_cases(0x21bf, 64, |case, rng| {
        let n = rng.random_range(1usize..500);
        let s = rng.random_range(0.0f64..2.5);
        let seed = rng.random_range(0u64..1000);
        let z = Zipf::new(n, s);
        let mut r1 = SmallRng::seed_from_u64(seed);
        let mut r2 = SmallRng::seed_from_u64(seed);
        for _ in 0..64 {
            let x = z.sample(&mut r1);
            assert!(x < n, "case {case}: {x} out of range {n}");
            assert_eq!(x, z.sample(&mut r2), "case {case}");
        }
    });
}

/// Value fingerprints are stable under clone and sensitive to content.
#[test]
fn value_fingerprint_properties() {
    for_cases(0xf19e, 128, |case, rng| {
        let n: i64 = rng.random();
        let len = rng.random_range(0usize..=24);
        let s: String = (0..len)
            .map(|_| char::from(rng.random_range(0x20u8..0x7f)))
            .collect();
        let v = Value::map([("n", Value::Int(n)), ("s", Value::str(s.clone()))]);
        assert_eq!(v.fingerprint(), v.fingerprint(), "case {case}");
        let v2 = Value::map([("n", Value::Int(n.wrapping_add(1))), ("s", Value::str(s))]);
        assert_ne!(v.fingerprint(), v2.fingerprint(), "case {case}");
    });
}

/// The time-weighted gauge equals the hand-computed integral for any
/// monotone schedule of (time, level) updates.
#[test]
fn gauge_matches_manual_integral() {
    for_cases(0x6a03, 128, |case, rng| {
        let steps: Vec<(u64, f64)> = (0..rng.random_range(1usize..20))
            .map(|_| (rng.random_range(1u64..1000), rng.random_range(0.0f64..100.0)))
            .collect();
        let mut g = TimeWeightedGauge::new(Duration::ZERO);
        let mut now = Duration::ZERO;
        let mut integral = 0.0;
        let mut level = 0.0;
        for (gap_ms, next_level) in steps {
            let gap = Duration::from_millis(gap_ms);
            integral += level * gap.as_secs_f64();
            now += gap;
            g.set(now, next_level);
            level = next_level;
        }
        let horizon = now + Duration::from_millis(500);
        integral += level * 0.5;
        let expect = integral / horizon.as_secs_f64();
        let got = g.average(horizon);
        assert!((got - expect).abs() < 1e-6, "case {case}: got {got} expect {expect}");
    });
}
