//! Property-based tests of the shared primitives: histogram quantile
//! accuracy, log-normal fitting, version-tuple ordering, Zipf support, and
//! value fingerprint stability.

use std::time::Duration;

use hm_common::dist::Zipf;
use hm_common::latency::LogNormalLatency;
use hm_common::metrics::{Histogram, TimeWeightedGauge};
use hm_common::{SeqNum, Value, VersionTuple};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    /// The histogram's quantiles are within its documented relative error
    /// of the exact empirical quantiles, for arbitrary samples.
    #[test]
    fn histogram_quantiles_bounded_error(
        mut samples in prop::collection::vec(1_000u64..10_000_000_000, 1..200),
        q in 0.01f64..0.999,
    ) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(Duration::from_nanos(s));
        }
        samples.sort_unstable();
        let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
        let exact = samples[rank - 1] as f64 / 1e6;
        let got = h.quantile_ms(q).unwrap();
        let rel = (got - exact).abs() / exact;
        prop_assert!(rel < 0.03, "q={q} exact={exact} got={got} rel={rel}");
    }

    /// Merging two histograms equals recording all samples into one.
    #[test]
    fn histogram_merge_equivalence(
        a in prop::collection::vec(1_000u64..1_000_000_000, 0..60),
        b in prop::collection::vec(1_000u64..1_000_000_000, 0..60),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hall = Histogram::new();
        for &s in &a {
            ha.record(Duration::from_nanos(s));
            hall.record(Duration::from_nanos(s));
        }
        for &s in &b {
            hb.record(Duration::from_nanos(s));
            hall.record(Duration::from_nanos(s));
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hall.count());
        if ha.count() > 0 {
            prop_assert_eq!(ha.median_ms(), hall.median_ms());
            prop_assert_eq!(ha.p99_ms(), hall.p99_ms());
        }
    }

    /// Fitting recovers the requested quantiles for any valid pair.
    #[test]
    fn lognormal_fit_roundtrip(median in 0.01f64..100.0, ratio in 1.0f64..20.0) {
        let d = LogNormalLatency::fit_ms(median, median * ratio);
        prop_assert!((d.median_ms() - median).abs() / median < 1e-9);
        prop_assert!((d.p99_ms() - median * ratio).abs() / (median * ratio) < 1e-9);
    }

    /// Samples are always positive and finite.
    #[test]
    fn lognormal_samples_positive(median in 0.01f64..50.0, ratio in 1.0f64..10.0, seed in 0u64..1000) {
        let d = LogNormalLatency::fit_ms(median, median * ratio);
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..32 {
            let s = d.sample(&mut rng);
            prop_assert!(s > Duration::ZERO);
            prop_assert!(s < Duration::from_secs(3600));
        }
    }

    /// Version tuples order lexicographically: cursor first, counter second.
    #[test]
    fn version_tuple_lexicographic(a in any::<(u64, u32)>(), b in any::<(u64, u32)>()) {
        let va = VersionTuple::new(SeqNum(a.0), a.1);
        let vb = VersionTuple::new(SeqNum(b.0), b.1);
        let expect = a.cmp(&b);
        prop_assert_eq!(va.cmp(&vb), expect);
    }

    /// Zipf sampling always lands in range and is deterministic per seed.
    #[test]
    fn zipf_in_range_and_deterministic(n in 1usize..500, s in 0.0f64..2.5, seed in 0u64..1000) {
        let z = Zipf::new(n, s);
        let mut r1 = SmallRng::seed_from_u64(seed);
        let mut r2 = SmallRng::seed_from_u64(seed);
        for _ in 0..64 {
            let x = z.sample(&mut r1);
            prop_assert!(x < n);
            prop_assert_eq!(x, z.sample(&mut r2));
        }
    }

    /// Value fingerprints are stable under clone and sensitive to content.
    #[test]
    fn value_fingerprint_properties(n in any::<i64>(), s in ".{0,24}") {
        let v = Value::map([("n", Value::Int(n)), ("s", Value::str(s.clone()))]);
        prop_assert_eq!(v.fingerprint(), v.clone().fingerprint());
        let v2 = Value::map([("n", Value::Int(n.wrapping_add(1))), ("s", Value::str(s))]);
        prop_assert_ne!(v.fingerprint(), v2.fingerprint());
    }

    /// The time-weighted gauge equals the hand-computed integral for any
    /// monotone schedule of (time, level) updates.
    #[test]
    fn gauge_matches_manual_integral(
        mut steps in prop::collection::vec((1u64..1000, 0.0f64..100.0), 1..20),
    ) {
        // Build a monotone time schedule from positive gaps.
        let mut g = TimeWeightedGauge::new(Duration::ZERO);
        let mut now = Duration::ZERO;
        let mut integral = 0.0;
        let mut level = 0.0;
        for (gap_ms, next_level) in steps.drain(..) {
            let gap = Duration::from_millis(gap_ms);
            integral += level * gap.as_secs_f64();
            now += gap;
            g.set(now, next_level);
            level = next_level;
        }
        let horizon = now + Duration::from_millis(500);
        integral += level * 0.5;
        let expect = integral / horizon.as_secs_f64();
        let got = g.average(horizon);
        prop_assert!((got - expect).abs() < 1e-6, "got {got} expect {expect}");
    }
}
