//! Boki-style shared log: the paper's logging layer.
//!
//! The logging layer implements the shared-log abstraction (§3): a global
//! totally-ordered stream of records, logically divided into sub-streams by
//! *tags*. A record may carry several tags and thus appear in several
//! sub-streams; sub-stream order is inherited from the main log's seqnums.
//!
//! The API surface is exactly Figure 3:
//!
//! | paper               | here                        |
//! |---------------------|-----------------------------|
//! | `logAppend`         | [`SharedLog::append`]       |
//! | `logCondAppend` §5.1| [`SharedLog::cond_append`]  |
//! | `logReadPrev`       | [`SharedLog::read_prev`]    |
//! | `logReadNext`       | [`SharedLog::read_next`]    |
//! | `logTrim`           | [`SharedLog::trim`]         |
//!
//! plus [`SharedLog::read_stream`], the `getStepLogs` helper from Figure 5
//! that retrieves an SSF's whole execution history in one call.
//!
//! # Simulation model
//!
//! An append costs one sequencer round (the seqnum is assigned *mid-flight*,
//! so concurrent appends interleave realistically) plus a replicated storage
//! write; the combined latency is calibrated to Table 1's "Log" row. Reads
//! are served from a per-function-node record cache when the node has seen
//! the record before (Boki's design, §4.1: 0.12 ms median cached) and from a
//! storage node otherwise.
//!
//! ```
//! use hm_common::{ids::TagKind, latency::LatencyModel, NodeId, SeqNum, Tag};
//! use hm_sharedlog::{LogConfig, SharedLog};
//! use hm_sim::Sim;
//!
//! let mut sim = Sim::new(1);
//! let log: SharedLog<String> =
//!     SharedLog::new(sim.ctx(), LatencyModel::calibrated(), LogConfig::default());
//! let l = log.clone();
//! sim.block_on(async move {
//!     let step = Tag::named(TagKind::StepLog, "ssf-1");
//!     let object = Tag::named(TagKind::ObjectLog, "account");
//!     // One record, two sub-streams (step log + object write log).
//!     let sn = l.append(NodeId(0), vec![step, object], "v1".into()).await;
//!     let seen = l.read_prev(NodeId(0), object, SeqNum::MAX).await.unwrap();
//!     assert_eq!(seen.seqnum, sn);
//!     assert_eq!(seen.payload, "v1");
//! });
//! ```

mod log_impl;
mod payload;

pub use log_impl::{CondAppendOutcome, LogConfig, LogRecord, SharedLog};
pub use payload::Payload;
