//! Boki-style shared log: the paper's logging layer, sharded.
//!
//! The logging layer implements the shared-log abstraction (§3): a global
//! totally-ordered stream of records, logically divided into sub-streams by
//! *tags*. A record may carry several tags and thus appear in several
//! sub-streams; sub-stream order is inherited from the shared clock's
//! seqnums.
//!
//! The API surface is exactly Figure 3, served by the routed
//! [`LogService`] facade ([`SharedLog`] is an alias for it):
//!
//! | paper               | here                        |
//! |---------------------|-----------------------------|
//! | `logAppend`         | [`LogService::append`]      |
//! | `logCondAppend` §5.1| [`LogService::cond_append`] |
//! | `logReadPrev`       | [`LogService::read_prev`]   |
//! | `logReadNext`       | [`LogService::read_next`]   |
//! | `logTrim`           | [`LogService::trim`]        |
//!
//! plus [`LogService::read_stream`], the `getStepLogs` helper from Figure 5
//! that retrieves an SSF's whole execution history in one call.
//!
//! # Topology
//!
//! The log runs as [`Topology::shards`] independently-sequenced shards.
//! Sub-streams are placed deterministically by tag hash (`router`), each
//! shard owns a sequencer lane plus a replicated storage group (`shard`),
//! and the facade (`service`) routes every Figure-3 call to the owning
//! shard. Seqnums come from a clock shared by all shards, so they stay
//! globally comparable — see the `router` module docs for why the
//! protocols need that. The default topology is a single shard, which is
//! behaviorally identical to the pre-sharding monolith.
//!
//! # Simulation model
//!
//! An append costs one sequencer round (the seqnum is assigned *mid-flight*,
//! so concurrent appends interleave realistically) plus a replicated storage
//! write; the combined latency is calibrated to Table 1's "Log" row. Reads
//! are served from a per-function-node record cache when the node has seen
//! the record before (Boki's design, §4.1: 0.12 ms median cached) and from a
//! storage node otherwise.
//!
//! # Group commit
//!
//! With [`LogConfig::batch_max_records`] above 1, each shard's sequencer
//! coalesces concurrent appends into batches: one ordering decision and
//! one replicated storage write persist a whole batch, which occupies a
//! contiguous run of the shared clock. [`FlushStats`] reports the achieved
//! batch sizes and flush triggers. The default (1) keeps the unbatched
//! path, bit for bit — see the `service` module docs and DESIGN.md §14.
//!
//! ```
//! use hm_common::{ids::TagKind, latency::LatencyModel, NodeId, SeqNum, Tag};
//! use hm_sharedlog::{LogConfig, SharedLog};
//! use hm_substrate::sim::Sim;
//!
//! let mut sim = Sim::new(1);
//! let log: SharedLog<String> =
//!     SharedLog::new(sim.ctx(), LatencyModel::calibrated(), LogConfig::default());
//! let l = log.clone();
//! sim.block_on(async move {
//!     let step = Tag::named(TagKind::StepLog, "ssf-1");
//!     let object = Tag::named(TagKind::ObjectLog, "account");
//!     // One record, two sub-streams (step log + object write log).
//!     let sn = l.append(NodeId(0), vec![step, object], "v1".into()).await;
//!     let seen = l.read_prev(NodeId(0), object, SeqNum::MAX).await.unwrap();
//!     assert_eq!(seen.seqnum, sn);
//!     assert_eq!(seen.payload, "v1");
//! });
//! ```

#![deny(missing_docs)]

pub mod partition;
mod payload;
mod router;
mod service;
mod shard;

pub use partition::{RemoteAppend, ShardPlacement};
pub use payload::Payload;
pub use router::{shard_for_tag, GlobalSeqNum, ShardId, Topology};
pub use service::{CondAppendOutcome, LogConfig, LogService, ReplayStats};
pub use shard::{FlushStats, LogRecord, RECORD_META_BYTES};

/// The pre-sharding name for the log handle; an alias for the routed
/// facade so existing call sites keep compiling unchanged.
pub type SharedLog<P> = LogService<P>;
