//! Tag→shard placement and the shared sequencing clock.
//!
//! # Why a *shared* clock under per-shard sequencers
//!
//! Halfmoon's protocols only ever *scan* per sub-stream (tag), so each
//! shard can own its tags' stream indexes outright. But seqnums are
//! compared **across** streams all over the stack: the read-log cursor
//! bounds object-log `read_prev` calls, `Env::resolve` bounds the
//! transition stream by the init record's seqnum, `boki_write` folds a
//! step-log seqnum into a store version, and the GC watermark is a
//! seqnum compared against every stream's records. A per-shard counter
//! would make those comparisons meaningless.
//!
//! So shards share one logical order clock (à la Scalog's ordering layer
//! and Boki's metalog): every sequencing decision — on any shard — draws
//! the next value of a single dense counter. Each shard still has its own
//! sequencer *lane* (its own admission queue, capacity, and trace lane);
//! only the counter is shared. The composite [`GlobalSeqNum`] carries the
//! owning shard alongside the globally comparable position, and the
//! router's seqnum index maps any seqnum back to its owning shard's slab
//! slot in O(1).
//!
//! Placement is deterministic: `shard(tag) = fxhash(tag) % shards`, so
//! every node, the GC, and the metrics layer agree on where a sub-stream
//! lives without coordination. With `shards == 1` everything routes to
//! shard 0 and the clock degenerates to the old single-sequencer counter.
//!
//! Group commit (`LogConfig::batch_max_records > 1`) composes cleanly
//! with the shared clock: a flush installs its whole batch in one
//! synchronous loop with no intervening awaits, so each flushed batch
//! occupies a *contiguous* run of clock values even while other shards'
//! flushes interleave between batches.

use std::hash::Hasher;

use hm_common::collections::FxHasher;
use hm_common::{SeqNum, Tag};

/// Identifies one log shard: a sequencer lane plus its replicated storage
/// group and stream indexes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ShardId(pub u8);

/// Deployment-wide logging topology, threaded from runtime construction
/// down to the log service.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Topology {
    /// Number of independently sequenced log shards (≥ 1).
    pub shards: u8,
    /// Storage replicas backing each shard (the paper's setup uses three
    /// storage nodes per ordering lane).
    pub replicas_per_shard: u32,
    /// Function nodes in the deployment (each gets a per-shard record
    /// cache and a runtime worker pool).
    pub function_nodes: u32,
}

impl Default for Topology {
    fn default() -> Topology {
        Topology {
            shards: 1,
            replicas_per_shard: 3,
            function_nodes: 8,
        }
    }
}

impl Topology {
    /// The pre-sharding deployment: one sequencer, three replicas, eight
    /// function nodes.
    #[must_use]
    pub fn single() -> Topology {
        Topology::default()
    }

    /// Default topology with `shards` sequencer lanes (clamped to ≥ 1).
    #[must_use]
    pub fn sharded(shards: u8) -> Topology {
        Topology {
            shards: shards.max(1),
            ..Topology::default()
        }
    }
}

/// Composite log position: the owning shard plus the position drawn from
/// the shared order clock.
///
/// Ordering compares only the clock component — `seq` is globally unique
/// and dense across shards, so it is the paper-visible seqnum; `shard` is
/// routing metadata.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct GlobalSeqNum {
    /// Shard whose slab stores the record.
    pub shard: ShardId,
    /// Position in the shared total order.
    pub seq: SeqNum,
}

impl PartialOrd for GlobalSeqNum {
    fn partial_cmp(&self, other: &GlobalSeqNum) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for GlobalSeqNum {
    fn cmp(&self, other: &GlobalSeqNum) -> std::cmp::Ordering {
        self.seq.cmp(&other.seq)
    }
}

/// Deterministic tag placement: which shard owns `tag`'s sub-stream under
/// a `shards`-way topology. Exposed so tests and tools can pick tags that
/// land on (or off) a given shard.
#[must_use]
pub fn shard_for_tag(tag: Tag, shards: u8) -> ShardId {
    if shards <= 1 {
        return ShardId(0);
    }
    let mut h = FxHasher::default();
    h.write_u64(tag.0);
    #[allow(clippy::cast_possible_truncation)]
    ShardId((h.finish() % u64::from(shards)) as u8)
}

/// The routing core: placement plus the shared clock and the global
/// seqnum→slot index.
pub(crate) struct Router {
    topology: Topology,
    next_seqnum: SeqNum,
    /// `seqnum - 1` → `(shard, slot in that shard's slab)`. Seqnums are
    /// dense across shards, so this is a flat vector, not a map.
    seq_index: Vec<(u8, u32)>,
}

impl Router {
    pub(crate) fn new(topology: Topology) -> Router {
        Router {
            topology,
            next_seqnum: SeqNum(1),
            seq_index: Vec::new(),
        }
    }

    pub(crate) fn shard_of(&self, tag: Tag) -> ShardId {
        shard_for_tag(tag, self.topology.shards)
    }

    /// The seqnum the next sequencing decision will receive.
    pub(crate) fn head(&self) -> SeqNum {
        self.next_seqnum
    }

    /// Draws the next value of the shared clock for a record stored at
    /// `slot` in `shard`'s slab.
    pub(crate) fn assign(&mut self, shard: u8, slot: u32) -> SeqNum {
        let seqnum = self.next_seqnum;
        self.next_seqnum = seqnum.next();
        debug_assert_eq!(
            self.seq_index.len() as u64 + 1,
            seqnum.0,
            "the shared clock must stay dense"
        );
        self.seq_index.push((shard, slot));
        seqnum
    }

    /// Maps a seqnum back to `(shard, slot)`, if it was ever assigned.
    pub(crate) fn locate(&self, sn: SeqNum) -> Option<(u8, u32)> {
        let idx = sn.0.checked_sub(1)? as usize;
        self.seq_index.get(idx).copied()
    }
}

#[cfg(test)]
mod tests {
    use hm_common::ids::TagKind;

    use super::*;

    #[test]
    fn placement_is_deterministic_and_in_range() {
        for shards in [1u8, 2, 4, 8] {
            for i in 0..256u64 {
                let tag = Tag::new(TagKind::ObjectLog, i);
                let s = shard_for_tag(tag, shards);
                assert!(s.0 < shards, "shard {s:?} out of range for {shards}");
                assert_eq!(s, shard_for_tag(tag, shards), "placement must be stable");
            }
        }
    }

    #[test]
    fn placement_spreads_tags_across_shards() {
        let shards = 8u8;
        let mut seen = vec![0u32; shards as usize];
        for i in 0..512u64 {
            seen[shard_for_tag(Tag::new(TagKind::ObjectLog, i), shards).0 as usize] += 1;
        }
        assert!(
            seen.iter().all(|&n| n > 0),
            "every shard must receive some tags: {seen:?}"
        );
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        for i in 0..64u64 {
            assert_eq!(shard_for_tag(Tag::new(TagKind::StepLog, i), 1), ShardId(0));
        }
    }

    #[test]
    fn global_seqnums_order_by_the_shared_clock() {
        let a = GlobalSeqNum {
            shard: ShardId(3),
            seq: SeqNum(5),
        };
        let b = GlobalSeqNum {
            shard: ShardId(0),
            seq: SeqNum(9),
        };
        assert!(a < b, "ordering ignores the shard component");
    }

    #[test]
    fn router_clock_is_dense_and_locatable() {
        let mut r = Router::new(Topology::sharded(4));
        let a = r.assign(2, 0);
        let b = r.assign(0, 0);
        let c = r.assign(2, 1);
        assert_eq!((a, b, c), (SeqNum(1), SeqNum(2), SeqNum(3)));
        assert_eq!(r.locate(a), Some((2, 0)));
        assert_eq!(r.locate(b), Some((0, 0)));
        assert_eq!(r.locate(c), Some((2, 1)));
        assert_eq!(r.locate(SeqNum(4)), None);
        assert_eq!(r.head(), SeqNum(4));
    }
}
