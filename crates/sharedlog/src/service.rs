//! The routed log facade: Figure 3's API over one or more shards.
//!
//! [`LogService`] keeps the exact call shapes of the pre-sharding
//! `SharedLog` — `append` / `cond_append` / `read_prev` / `read_next` /
//! `read_stream` / `trim` — so `hm-core`'s Env, protocol ops, txn, and GC
//! code is oblivious to the topology. Internally every operation:
//!
//! 1. routes by tag (`router::shard_for_tag`) to the shard owning the
//!    sub-stream,
//! 2. passes that shard's sequencer lane (bounded by
//!    [`LogConfig::sequencer_capacity`], a no-op when uncapped),
//! 3. draws seqnums from the *shared* clock so cross-stream comparisons
//!    keep working (see `router` module docs), and
//! 4. charges latency, bytes, caches, and counters to that shard.
//!
//! # Multi-tag records across shards
//!
//! A record is sequenced once and **stored once**, on its *home* shard:
//! the shard of its first tag (for `cond_append`, the shard of the
//! condition tag, so the offset check and the store land on the same
//! sequencer). Tags routed elsewhere get index-only stream entries —
//! the seqnum appears in the foreign shard's sub-stream and resolves
//! through the router back to the home shard's slab, like Boki's index
//! replication. Bytes are charged exactly once (home shard) and freed
//! exactly once, when the last stream membership — on any shard — dies.
//!
//! With `shards == 1` every operation routes to shard 0 and the service
//! is behaviorally bit-identical to the old monolith: same RNG draw
//! order, same sleeps, same counter and gauge update sequence.
//!
//! # Group-commit batching (`batch_max_records > 1`)
//!
//! Each shard's sequencer optionally coalesces appends into batches
//! (DESIGN.md §14). An append still races to the sequencer on its own —
//! drawing its usual latency sample and sleeping the to-sequencer share —
//! but on arrival it *joins the shard's open batch* instead of paying
//! admission alone. The batch flushes when it holds
//! [`LogConfig::batch_max_records`] members, when
//! [`LogConfig::batch_max_delay`] elapses on its first member, or when a
//! recovery read forces it. One flush pays **one** sequencer admission and
//! **one** coalesced replica write for the whole batch; members install in
//! arrival order, so a batch occupies a contiguous run of the shared
//! seqnum clock. `cond_append` conditions are evaluated at flush time,
//! atomically with the installs — exactly when the unbatched path
//! evaluates them. The flush itself runs on a detached task owned by the
//! sequencer: a client crashing mid-flush never strands its batch peers.
//!
//! With `batch_max_records <= 1` (the default) none of this code runs and
//! the append path is the pre-batching code, bit for bit.

use std::cell::{Cell, RefCell};
use std::future::{poll_fn, Future};
use std::pin::pin;
use std::rc::Rc;
use std::task::{Poll, Waker};
use std::time::Duration;

use hm_common::anatomy::{Anatomy, Phase as AnatomyPhase, PhaseSheet};
use hm_common::collections::TagSet;
use hm_common::latency::LatencyModel;
use hm_common::metrics::OpCounters;
use hm_common::trace::{Lane, SpanId, TraceId, Tracer};
use hm_common::{NodeId, SeqNum, Tag};
use hm_substrate::sync::Gate;
use hm_substrate::Ctx;

use crate::payload::Payload;
use crate::router::{GlobalSeqNum, Router, ShardId, Topology};
use crate::shard::{
    FlushStats, LogRecord, Memberships, RecordSlot, ShardState, Stream, RECORD_META_BYTES,
};

/// Captured trace context for one in-flight log operation: the tracer plus
/// the `(trace, span)` this operation's storage-lane span belongs to.
type TraceScope = Option<(Rc<Tracer>, TraceId, SpanId)>;

/// Result of a successful [`LogService::cond_append`], or the conflict info
/// the paper's `logCondAppend` returns (§5.1): the seqnum of the record that
/// already occupies the expected position, so the losing instance can adopt
/// the winner's state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CondAppendOutcome {
    /// This append won: the record landed at the expected offset.
    Appended(SeqNum),
    /// A peer's record already occupies the expected offset; the append was
    /// undone. Carries the winner's seqnum.
    Conflict(SeqNum),
}

/// Accounting from one [`LogService::replay_stream`] call — the §5
/// recovery numbers: how much history the successor re-read and how much
/// was already behind the trim horizon (covered by checkpoints, skipped).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Live records returned — what the successor replays. Each record is
    /// counted exactly once, whether it was already durable or only became
    /// durable via the forced flush this call issued (see
    /// [`ReplayStats::pending_flushed`]).
    pub replayed: u64,
    /// Records trimmed off the stream front before the call — the trim
    /// horizon the replay starts from.
    pub trimmed: u64,
    /// Records that were still parked in the home shard's open batch when
    /// the replay began, and which this call force-flushed before reading.
    /// Always a subset of the records counted by `replayed` (never an
    /// addition to it) — the double-count a crash mid-flush used to cause.
    /// Zero when batching is off.
    pub pending_flushed: u64,
}

/// Tuning knobs for the simulated logging layer.
#[derive(Clone, Copy, Debug)]
pub struct LogConfig {
    /// Fraction of append latency spent *before* the sequencer assigns the
    /// seqnum (the request's trip to the sequencer). Concurrent appends
    /// therefore race for order, like on the real network.
    pub sequencer_fraction: f64,
    /// Shard count, replicas per shard, and function-node count.
    pub topology: Topology,
    /// Replicas that must acknowledge an append before it is durable.
    pub quorum: u32,
    /// Capacity of each function node's per-shard record cache, in
    /// records. The default is large enough that steady-state benchmark
    /// workloads never evict (memory grows with occupancy, not with this
    /// bound); shrink it to model cache pressure.
    pub node_cache_capacity: usize,
    /// Appends per second one shard's sequencer can order. `None` models
    /// an ideal (infinitely fast) sequencer — the pre-sharding behavior,
    /// where ordering adds no queueing delay. Set it to see a sequencer
    /// saturate: appends beyond the capacity queue FIFO at the lane and
    /// pay the backlog as extra latency.
    pub sequencer_capacity: Option<f64>,
    /// Group-commit batch size: how many appends a shard's sequencer
    /// coalesces into one admission + one replicated storage round-trip.
    /// `1` (the default) disables batching entirely — the append path is
    /// the exact pre-batching code, bit-identical RNG draws and all.
    /// Values above 1 enable the per-shard batcher described in the module
    /// docs: a batch flushes when it reaches this size or when
    /// [`LogConfig::batch_max_delay`] elapses, whichever comes first.
    pub batch_max_records: usize,
    /// Longest virtual time the first record of a batch may wait for
    /// company before the batch flushes anyway. Irrelevant while
    /// `batch_max_records <= 1`.
    pub batch_max_delay: Duration,
}

impl Default for LogConfig {
    fn default() -> LogConfig {
        LogConfig {
            sequencer_fraction: 0.4,
            topology: Topology::default(),
            quorum: 2,
            node_cache_capacity: 1 << 20,
            sequencer_capacity: None,
            batch_max_records: 1,
            batch_max_delay: Duration::from_micros(200),
        }
    }
}

/// One append parked in a shard's open batch, waiting for the flush that
/// will sequence it.
///
/// Everything in a member is a pointer bump or a `Copy` to move: tags are
/// an inline [`TagSet`], the payload's `Clone` is refcounted for protocol
/// records, and the outcome cell is recycled through the service's pool —
/// parking an append allocates nothing in steady state.
struct PendingAppend<P> {
    node: NodeId,
    tags: TagSet,
    payload: P,
    /// `Some((cond_tag, cond_pos))` for `cond_append` members; the check
    /// is evaluated at flush time, atomically with the install, exactly as
    /// the unbatched path evaluates it at sequencing time.
    cond: Option<(Tag, usize)>,
    /// This member's storage share of its own latency draw. The batch's
    /// coalesced write takes the max over members — no fresh draw.
    storage_part: Duration,
    /// The member's trace context, so the flush can emit its sequencing
    /// instant on the right trace.
    scope: TraceScope,
    /// The member's phase sheet, so the flush can walk it through
    /// `BatchWait → Sequencer → Quorum` while the appender is parked at
    /// the gate.
    sheet: Option<Rc<PhaseSheet>>,
    /// Where the flush deposits this member's result before opening the
    /// gate. Plain appends receive `Appended`. Pooled: see
    /// [`LogService::recycle_outcome_cell`].
    outcome: OutcomeCell,
}

/// A batched append's result slot: written once by the flush task, read
/// once by the waiting appender after the gate opens. `Cell` (not
/// `RefCell`): the outcome is `Copy` and the slot needs no borrow tracking.
type OutcomeCell = Rc<Cell<Option<CondAppendOutcome>>>;

/// Most member vectors the service keeps around for reuse. Batches churn at
/// flush rate, so a handful per shard covers every in-flight flush; beyond
/// that, dropping the excess is cheaper than hoarding arbitrary capacity.
const BATCH_POOL_CAP: usize = 32;

/// Most outcome cells kept for reuse — two full batches per shard at the
/// default topology, enough that steady-state batching never allocates one.
const OUTCOME_POOL_CAP: usize = 256;

/// Most retired gates kept for reuse. A gate can only be recycled once its
/// last waiter has dropped it, which happens a storage round-trip after the
/// batch flushed — so retired gates park here until they go quiescent.
const GATE_POOL_CAP: usize = 32;

/// Why a batch flushed — bookkept into [`FlushStats`].
#[derive(Clone, Copy)]
enum FlushTrigger {
    /// Reached `batch_max_records`.
    Size,
    /// `batch_max_delay` elapsed on the oldest member.
    Deadline,
    /// A `replay_stream` recovery read drained it.
    Forced,
}

/// A claimed (no longer joinable) batch, handed to exactly one flush task.
struct ClaimedBatch<P> {
    members: Vec<PendingAppend<P>>,
    /// Opened once the batch is sequenced **and** durable; every member —
    /// and any recovery read that forced the flush — waits on a clone.
    gate: Gate,
}

/// Per-shard batcher: the open (joinable) batch, if any.
struct BatchState<P> {
    /// Bumped on every claim. A deadline task armed for epoch `e` finds
    /// the epoch moved on when a size trigger (or forced flush) already
    /// claimed its batch, and stands down.
    epoch: u64,
    pending: Vec<PendingAppend<P>>,
    /// Gate of the open batch; replaced when a new batch opens.
    gate: Gate,
    /// Waker of the armed deadline task, tagged with the epoch it guards.
    /// A size trigger *hands its claimed batch to that task* (through
    /// `handoff`) instead of spawning a fresh flush task — the deadline
    /// task is already sitting there parked on its delay, so reusing it
    /// saves one task allocation per batch on the hot path.
    deadline_waker: Option<(u64, Waker)>,
    /// A size-claimed batch parked for the woken deadline task to flush,
    /// tagged with the epoch it was claimed from so a stale task (armed
    /// for an older batch) can never pick up a newer batch's work.
    handoff: Option<(u64, ClaimedBatch<P>)>,
}

impl<P> BatchState<P> {
    fn new() -> BatchState<P> {
        BatchState {
            epoch: 0,
            pending: Vec::new(),
            gate: Gate::new(),
            deadline_waker: None,
            handoff: None,
        }
    }
}

struct ServiceInner<P> {
    router: Router,
    shards: Vec<ShardState<P>>,
    /// Per-shard group-commit batchers (idle while batching is off).
    batchers: Vec<BatchState<P>>,
    /// Optional tracing sink, shared by all handle clones.
    tracer: Option<Rc<Tracer>>,
    /// Optional latency-anatomy collector: log round-trips charge their
    /// caller's phase sheet (picked up from the collector's context cell).
    anatomy: Option<Rc<Anatomy>>,
    /// Flush arena: member vectors recycled between batches. A claim swaps
    /// a pooled (empty, capacity-retaining) vector in for the open batch;
    /// the flush drains its members and returns the vector here. Steady-
    /// state batching therefore reuses the same few allocations forever.
    batch_pool: Vec<Vec<PendingAppend<P>>>,
    /// Recycled outcome cells (see [`OutcomeCell`]). A cell returns here
    /// only when its waiter holds the last reference, so recycling can
    /// never alias a live batch member.
    outcome_pool: Vec<OutcomeCell>,
    /// Retired batch gates awaiting quiescence. A new batch adopts the
    /// first pooled gate whose [`Gate::try_reset`] succeeds (sole owner —
    /// no waiter can observe the reset), keeping gate allocation off the
    /// steady-state append path.
    gate_pool: Vec<Gate>,
    /// Scratch for [`LogService::install`]'s touched-shard dedup list.
    /// Bounded by the shard count; reused across every install.
    touched_scratch: Vec<u8>,
    /// Scratch for [`LogService::trim`]'s drained-seqnum list.
    trim_scratch: Vec<SeqNum>,
    /// Scratch for [`LogService::trim`]'s per-shard freed-bytes tally.
    freed_scratch: Vec<usize>,
    /// Scratch for [`LogService::read_stream`]'s seqnum snapshot. Taken
    /// (not borrowed) across the read's await; a reentrant reader simply
    /// falls back to a fresh vector.
    stream_scratch: Vec<SeqNum>,
}

impl<P> ServiceInner<P> {
    fn locate_slot(&self, sn: SeqNum) -> Option<&RecordSlot<P>> {
        let (shard, slot) = self.router.locate(sn)?;
        self.shards[shard as usize].slot(slot)
    }

    /// The record's stored offset under `tag`, when the bound seqnum names
    /// a live record that is a member of that stream.
    fn offset_in_stream(&self, sn: SeqNum, tag: Tag) -> Option<u64> {
        self.locate_slot(sn)
            .and_then(|slot| slot.memberships.last_offset_of(tag))
    }
}

/// Handle to the simulated, possibly sharded, shared log. Cheap to clone;
/// clones share state.
///
/// The Figure-3 surface in one sitting — append to two sub-streams, read
/// one back, race a conditional append, trim:
///
/// ```
/// use hm_common::{ids::TagKind, latency::LatencyModel, NodeId, SeqNum, Tag};
/// use hm_sharedlog::{CondAppendOutcome, LogConfig, LogService};
/// use hm_substrate::sim::Sim;
///
/// let mut sim = Sim::new(7);
/// let log: LogService<String> =
///     LogService::new(sim.ctx(), LatencyModel::calibrated(), LogConfig::default());
/// let l = log.clone();
/// sim.block_on(async move {
///     let step = Tag::named(TagKind::StepLog, "instance-1");
///     let obj = Tag::named(TagKind::ObjectLog, "account");
///     let sn = l.append(NodeId(0), vec![step, obj], "deposit 10".into()).await;
///     assert_eq!(l.read_prev(NodeId(0), obj, SeqNum::MAX).await.unwrap().seqnum, sn);
///     // The step's next offset is 1 (one record so far): position 0 is
///     // already taken, so a conditional append at 0 loses and learns the
///     // winner's seqnum.
///     let lost = l
///         .cond_append(NodeId(1), vec![step], "dup step".into(), step, 0)
///         .await;
///     assert_eq!(lost, CondAppendOutcome::Conflict(sn));
///     l.trim(NodeId(0), step, sn).await;
///     assert!(l.read_prev(NodeId(0), step, SeqNum::MAX).await.is_none());
/// });
/// ```
pub struct LogService<P> {
    ctx: Ctx,
    model: LatencyModel,
    config: LogConfig,
    inner: Rc<RefCell<ServiceInner<P>>>,
}

impl<P> Clone for LogService<P> {
    fn clone(&self) -> Self {
        LogService {
            ctx: self.ctx.clone(),
            model: self.model,
            config: self.config,
            inner: self.inner.clone(),
        }
    }
}

impl<P: Payload> LogService<P> {
    /// Creates an empty log with `config.topology.shards` sequencer lanes.
    /// Seqnums start at 1 so that [`SeqNum::ZERO`] can mean "before
    /// everything".
    #[must_use]
    pub fn new(ctx: Ctx, model: LatencyModel, config: LogConfig) -> LogService<P> {
        let now = ctx.now();
        let shards = config.topology.shards.max(1);
        LogService {
            ctx,
            model,
            config,
            inner: Rc::new(RefCell::new(ServiceInner {
                router: Router::new(config.topology),
                shards: (0..shards)
                    .map(|_| ShardState::new(now, config.node_cache_capacity))
                    .collect(),
                batchers: (0..shards).map(|_| BatchState::new()).collect(),
                tracer: None,
                anatomy: None,
                batch_pool: Vec::new(),
                outcome_pool: Vec::new(),
                gate_pool: Vec::new(),
                touched_scratch: Vec::new(),
                trim_scratch: Vec::new(),
                freed_scratch: Vec::new(),
                stream_scratch: Vec::new(),
            })),
        }
    }

    /// The topology this service was built with.
    #[must_use]
    pub fn topology(&self) -> Topology {
        self.config.topology
    }

    /// Number of shards (sequencer lanes).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.inner.borrow().shards.len()
    }

    /// Which shard owns `tag`'s sub-stream.
    #[must_use]
    pub fn shard_of(&self, tag: Tag) -> ShardId {
        self.inner.borrow().router.shard_of(tag)
    }

    /// Maps a seqnum to its composite position, if it was ever assigned.
    #[must_use]
    pub fn locate(&self, sn: SeqNum) -> Option<GlobalSeqNum> {
        let inner = self.inner.borrow();
        inner.router.locate(sn).map(|(shard, _)| GlobalSeqNum {
            shard: ShardId(shard),
            seq: sn,
        })
    }

    /// Installs a tracer; every log round-trip then emits a span on the
    /// storage lane (with sequencing decisions on the owning shard's
    /// sequencer lane and cache hits/misses on the reading node's lane),
    /// attributed to the caller's current trace context. Shared by all
    /// handle clones.
    pub fn set_tracer(&self, tracer: Rc<Tracer>) {
        self.inner.borrow_mut().tracer = Some(tracer);
    }

    /// Installs the anatomy collector; every log round-trip then charges
    /// phase time (`LogHop`/`BatchWait`/`Sequencer`/`Quorum` for appends,
    /// `LogRead` for reads) to its caller's phase sheet. Shared by all
    /// handle clones.
    pub fn set_anatomy(&self, anatomy: Rc<Anatomy>) {
        self.inner.borrow_mut().anatomy = Some(anatomy);
    }

    /// Captures the caller's phase sheet and starts charging `phase`.
    /// Same entry-point discipline as [`LogService::trace_begin`]: must run
    /// before the operation's first await.
    fn stamp_begin(&self, phase: AnatomyPhase) -> Option<Rc<PhaseSheet>> {
        let sheet = self.inner.borrow().anatomy.as_ref()?.context()?;
        sheet.enter(self.ctx.now(), phase);
        Some(sheet)
    }

    /// Retags the phase currently charged to `sheet` (no-op when anatomy
    /// is off or the sheet already finished).
    fn stamp_switch(&self, sheet: &Option<Rc<PhaseSheet>>, phase: AnatomyPhase) {
        if let Some(sheet) = sheet {
            sheet.switch(self.ctx.now(), phase);
        }
    }

    /// Ends the phase opened by [`LogService::stamp_begin`].
    fn stamp_end(&self, sheet: &Option<Rc<PhaseSheet>>) {
        if let Some(sheet) = sheet {
            sheet.exit(self.ctx.now());
        }
    }

    /// Captures the caller's trace context and opens a storage-lane span.
    /// Must run at operation entry, before the first `await` (see
    /// `hm_common::trace` module docs for the hand-off contract).
    fn trace_begin(&self, name: &'static str) -> TraceScope {
        let tracer = self.inner.borrow().tracer.clone()?;
        let (trace, parent) = tracer.context();
        let span = tracer.span_begin(Lane::Storage, self.ctx.now(), trace, parent, name, String::new());
        Some((tracer, trace, span))
    }

    fn trace_end(&self, scope: &TraceScope) {
        if let Some((tracer, trace, span)) = scope {
            tracer.span_end(Lane::Storage, self.ctx.now(), *trace, *span);
        }
    }

    /// Marks a sequencer-lane decision (order assignment or conflict) on
    /// `shard`'s lane, under this operation's span. `detail` is a closure
    /// so the string is never built when tracing is disabled.
    fn trace_sequencer(&self, scope: &TraceScope, shard: u8, name: &'static str, detail: impl FnOnce() -> String) {
        if let Some((tracer, trace, span)) = scope {
            tracer.instant(Lane::Sequencer(shard), self.ctx.now(), *trace, *span, name, detail());
        }
    }

    /// The home shard for a record with these tags: the shard of the
    /// first tag (tagless records go to shard 0).
    fn home_shard(&self, tags: &[Tag]) -> u8 {
        tags.first()
            .map_or(0, |&tag| self.inner.borrow().router.shard_of(tag).0)
    }

    /// FIFO admission at `shard`'s sequencer lane. With a capacity
    /// configured, the caller waits out the lane's backlog and its own
    /// ordering decision books `1/capacity` of lane time. Uncapped lanes
    /// (the default) book zero service time, so absent an injected
    /// [`LogService::stall_sequencer`] the lane is never in the future
    /// and admission is instant — no sleep, no timer, interleaving-
    /// identical to the pre-sharding code.
    async fn sequencer_admission(&self, shard: u8) {
        let service = match self.config.sequencer_capacity {
            Some(capacity) => {
                debug_assert!(capacity > 0.0, "sequencer capacity must be positive");
                Duration::from_secs_f64(1.0 / capacity)
            }
            None => Duration::ZERO,
        };
        let now = self.ctx.now();
        let wait = {
            let mut inner = self.inner.borrow_mut();
            let lane = &mut inner.shards[shard as usize].sequencer_free_at;
            let start = (*lane).max(now);
            *lane = start + service;
            start.saturating_sub(now)
        };
        if !wait.is_zero() {
            self.ctx.sleep(wait).await;
        }
    }

    /// Books `stall` of dead time on `shard`'s sequencer lane, starting
    /// from the later of now and the lane's current backlog. Every
    /// ordering decision routed to the shard during the stall waits it
    /// out FIFO — the leader-pause / view-change hiccup a chaos campaign
    /// injects (appends are delayed, never lost or reordered).
    pub fn stall_sequencer(&self, shard: ShardId, stall: Duration) {
        let now = self.ctx.now();
        let mut inner = self.inner.borrow_mut();
        let lane = &mut inner.shards[shard.0 as usize].sequencer_free_at;
        *lane = (*lane).max(now) + stall;
    }

    /// Appends a record tagged with `tags`; returns its seqnum.
    ///
    /// Latency is one sample of the calibrated log-append distribution,
    /// split around the sequencer's order assignment; the storage phase
    /// completes when a quorum of the home shard's replicas has
    /// acknowledged (the slowest acknowledging replica sets the pace, so
    /// losing a replica visibly fattens the tail).
    ///
    /// With group-commit enabled (`batch_max_records > 1`) the record
    /// instead joins its home shard's open batch on arrival at the
    /// sequencer and returns once the batch's coalesced flush has
    /// sequenced and persisted it; the outcome and the client-visible
    /// ordering are unchanged.
    ///
    /// `tags` accepts anything convertible to a [`TagSet`]: a `Vec<Tag>`,
    /// a `&[Tag]`, or — allocation-free for the common ≤ 4-tag case — an
    /// array like `[step, obj]`.
    pub async fn append(&self, node: NodeId, tags: impl Into<TagSet>, payload: P) -> SeqNum {
        let tags: TagSet = tags.into();
        let scope = self.trace_begin("log_append");
        let sheet = self.stamp_begin(AnatomyPhase::LogHop);
        let home = self.home_shard(&tags);
        let total = self.ctx.with_rng(|rng| self.model.log_append.sample(rng));
        let to_sequencer = total.mul_f64(self.config.sequencer_fraction);
        self.ctx.sleep(to_sequencer).await;
        if self.batching_enabled() {
            let member = PendingAppend {
                node,
                tags,
                payload,
                cond: None,
                storage_part: total.saturating_sub(to_sequencer),
                scope: scope.clone(),
                sheet: sheet.clone(),
                outcome: self.take_outcome_cell(),
            };
            self.stamp_switch(&sheet, AnatomyPhase::BatchWait);
            let outcome = self.append_batched(home, member).await;
            self.trace_end(&scope);
            self.stamp_end(&sheet);
            let CondAppendOutcome::Appended(seqnum) = outcome else {
                unreachable!("unconditional append cannot conflict");
            };
            return seqnum;
        }
        self.stamp_switch(&sheet, AnatomyPhase::Sequencer);
        self.sequencer_admission(home).await;
        let seqnum = self.install(home, node, tags, payload);
        self.trace_sequencer(&scope, home, "sequenced", || format!("sn{}", seqnum.0));
        self.stamp_switch(&sheet, AnatomyPhase::Quorum);
        let storage = self.quorum_storage_latency(home, total.saturating_sub(to_sequencer));
        self.ctx.sleep(storage).await;
        self.trace_end(&scope);
        self.stamp_end(&sheet);
        seqnum
    }

    /// The storage-phase latency on `shard`. The calibrated log-append
    /// distribution already describes a healthy quorum-of-replicas write
    /// (DESIGN.md §4), so the full-strength path costs exactly the base
    /// sample. With replicas down, the quorum must include proportionally
    /// worse replicas: each missing replica fattens the write by ~25 %
    /// plus an extra tail jitter. Below quorum strength, the shard
    /// reconfigures (Boki's view change) and the append is counted as
    /// degraded — on that shard only.
    fn quorum_storage_latency(&self, shard: u8, base: Duration) -> Duration {
        let replicas = self.config.topology.replicas_per_shard;
        let mut inner = self.inner.borrow_mut();
        let state = &mut inner.shards[shard as usize];
        let live = replicas - state.failed_replicas.len() as u32;
        if live >= replicas {
            return base;
        }
        if live < self.config.quorum {
            state.degraded_appends += 1;
        }
        drop(inner);
        if live == 0 {
            // Total storage outage: a reconfiguration round on top.
            return base.saturating_mul(3);
        }
        let missing = (replicas - live) as f64;
        let jitter = self
            .ctx
            .with_rng(|rng| hm_common::latency::sample_standard_normal(rng).abs());
        base.mul_f64(1.0 + 0.25 * missing + 0.15 * jitter)
    }

    /// Marks a storage replica of `shard` as failed. Replica failure is
    /// shard-scoped: other shards' storage groups keep full-speed quorums.
    pub fn fail_storage_replica_on(&self, shard: ShardId, replica: u32) {
        let replicas = self.config.topology.replicas_per_shard;
        self.inner.borrow_mut().shards[shard.0 as usize]
            .failed_replicas
            .insert(replica % replicas);
    }

    /// Brings a failed storage replica of `shard` back.
    pub fn recover_storage_replica_on(&self, shard: ShardId, replica: u32) {
        let replicas = self.config.topology.replicas_per_shard;
        self.inner.borrow_mut().shards[shard.0 as usize]
            .failed_replicas
            .remove(&(replica % replicas));
    }

    /// Number of live storage replicas on shard 0.
    #[must_use]
    pub fn live_storage_replicas(&self) -> u32 {
        self.live_storage_replicas_on(ShardId(0))
    }

    /// Number of live storage replicas on `shard`.
    #[must_use]
    pub fn live_storage_replicas_on(&self, shard: ShardId) -> u32 {
        self.config.topology.replicas_per_shard
            - self.inner.borrow().shards[shard.0 as usize].failed_replicas.len() as u32
    }

    /// Appends persisted below the configured quorum (degraded views),
    /// across all shards.
    #[must_use]
    pub fn degraded_appends(&self) -> u64 {
        self.inner.borrow().shards.iter().map(|s| s.degraded_appends).sum()
    }

    /// Degraded appends charged to one shard's storage group.
    #[must_use]
    pub fn shard_degraded_appends(&self, shard: ShardId) -> u64 {
        self.inner.borrow().shards[shard.0 as usize].degraded_appends
    }

    /// Conditional append (§5.1, Figure 3's `logCondAppend`).
    ///
    /// Appends like [`LogService::append`], then checks that the new
    /// record's offset within the `cond_tag` sub-stream equals `cond_pos`.
    /// On mismatch the append is undone and the seqnum of the record
    /// actually at `cond_pos` is returned, so exactly one peer instance
    /// wins each step and losers can adopt the winner's record.
    ///
    /// The record's home shard is `cond_tag`'s shard, so the offset check
    /// and the sequencing decision stay atomic on one sequencer lane.
    pub async fn cond_append(
        &self,
        node: NodeId,
        tags: impl Into<TagSet>,
        payload: P,
        cond_tag: Tag,
        cond_pos: usize,
    ) -> CondAppendOutcome {
        let tags: TagSet = tags.into();
        debug_assert!(
            tags.contains(&cond_tag),
            "cond_tag must be among the record's tags"
        );
        let scope = self.trace_begin("log_cond_append");
        let sheet = self.stamp_begin(AnatomyPhase::LogHop);
        let home = self.inner.borrow().router.shard_of(cond_tag).0;
        let total = self.ctx.with_rng(|rng| self.model.log_append.sample(rng));
        let to_sequencer = total.mul_f64(self.config.sequencer_fraction);
        self.ctx.sleep(to_sequencer).await;
        if self.batching_enabled() {
            let member = PendingAppend {
                node,
                tags,
                payload,
                cond: Some((cond_tag, cond_pos)),
                storage_part: total.saturating_sub(to_sequencer),
                scope: scope.clone(),
                sheet: sheet.clone(),
                outcome: self.take_outcome_cell(),
            };
            self.stamp_switch(&sheet, AnatomyPhase::BatchWait);
            let outcome = self.append_batched(home, member).await;
            self.trace_end(&scope);
            self.stamp_end(&sheet);
            return outcome;
        }
        self.stamp_switch(&sheet, AnatomyPhase::Sequencer);
        self.sequencer_admission(home).await;
        // Sequencing and the condition check are atomic at the owning
        // shard: that is the point of logCondAppend (it resolves conflicts
        // "in place", unlike Boki's separate append-then-read). The
        // stream's next offset is O(1): `len_total` is a stored count.
        let outcome = {
            let mut inner = self.inner.borrow_mut();
            let state = &mut inner.shards[home as usize];
            let offset = state.streams.get(&cond_tag).map_or(0, Stream::len_total);
            if offset == cond_pos {
                drop(inner);
                CondAppendOutcome::Appended(self.install(home, node, tags, payload))
            } else {
                state.counters.cond_append_conflicts += 1;
                let winner = state
                    .streams
                    .get(&cond_tag)
                    .and_then(|s| s.at(cond_pos))
                    .unwrap_or(SeqNum::ZERO);
                CondAppendOutcome::Conflict(winner)
            }
        };
        match outcome {
            CondAppendOutcome::Appended(sn) => {
                self.trace_sequencer(&scope, home, "sequenced", || format!("sn{}", sn.0));
            }
            CondAppendOutcome::Conflict(winner) => {
                self.trace_sequencer(&scope, home, "cond_conflict", || format!("winner sn{}", winner.0));
            }
        }
        self.stamp_switch(&sheet, AnatomyPhase::Quorum);
        let storage = self.quorum_storage_latency(home, total.saturating_sub(to_sequencer));
        self.ctx.sleep(storage).await;
        self.trace_end(&scope);
        self.stamp_end(&sheet);
        outcome
    }

    // ---- group-commit batcher (active when batch_max_records > 1) ----

    /// Whether group-commit batching is configured
    /// (`LogConfig::batch_max_records > 1`).
    #[must_use]
    pub fn batching_enabled(&self) -> bool {
        self.config.batch_max_records > 1
    }

    /// Parks an append (plain or conditional) in `home`'s open batch, arms
    /// the flush trigger, and waits for the flush to deliver this member's
    /// outcome. Called after the member has already slept its trip to the
    /// sequencer, so batch join order *is* sequencer arrival order.
    async fn append_batched(&self, home: u8, member: PendingAppend<P>) -> CondAppendOutcome {
        let outcome = member.outcome.clone();
        let (gate, first, full, epoch) = {
            let mut inner = self.inner.borrow_mut();
            let inner = &mut *inner;
            let batcher = &mut inner.batchers[home as usize];
            if batcher.pending.is_empty() && !batcher.gate.try_reset() {
                // The previous batch's waiters still hold the gate: retire
                // it to the pool (it goes quiescent once they resume) and
                // adopt the first pooled gate that has, falling back to a
                // fresh one sized for a full batch.
                let mut adopted = None;
                for i in 0..inner.gate_pool.len() {
                    if inner.gate_pool[i].try_reset() {
                        adopted = Some(inner.gate_pool.swap_remove(i));
                        break;
                    }
                }
                let fresh = adopted
                    .unwrap_or_else(|| Gate::with_capacity(self.config.batch_max_records));
                let retired = std::mem::replace(&mut batcher.gate, fresh);
                if inner.gate_pool.len() < GATE_POOL_CAP {
                    inner.gate_pool.push(retired);
                }
            }
            batcher.pending.push(member);
            (
                batcher.gate.clone(),
                batcher.pending.len() == 1,
                batcher.pending.len() >= self.config.batch_max_records,
                batcher.epoch,
            )
        };
        if full {
            // The filling member claims synchronously (no await between the
            // push above and this claim, so the batch cannot change under
            // us) and hands the flush to this batch's deadline task instead
            // of spawning a fresh task: if the task is parked on its delay,
            // waking it enqueues the flush at exactly the point a spawned
            // task would have been; if it has not first-polled yet, it is
            // still in the ready queue behind us and picks the handoff up
            // on that first poll. Either way the per-batch flush-task
            // allocation disappears from the hot path.
            if let Some(batch) = self.claim_batch(home, Some(epoch)) {
                match self.hand_off_to_deadline_task(home, epoch, batch) {
                    Ok(Some(waker)) => waker.wake(),
                    Ok(None) => {} // task still in the ready queue; it checks the slot
                    Err(batch) => self.spawn_flush(home, batch, FlushTrigger::Size),
                }
            }
        } else if first {
            // First member arms the deadline. The task is detached (owned
            // by the sequencer, not by any function node's failure domain).
            // It flushes the batch on whichever trigger fires first: a
            // size trigger hands the claimed batch over (above), or the
            // delay elapses and the task claims the batch itself — unless
            // a forced trigger claimed it first (the epoch moved on), in
            // which case it stands down.
            let svc = self.clone();
            let delay = self.config.batch_max_delay;
            self.ctx.spawn_detached(async move {
                if let Some(batch) = svc.deadline_or_handoff(home, epoch, delay).await {
                    svc.flush_batch(home, batch, FlushTrigger::Size).await;
                } else if let Some(batch) = svc.claim_batch(home, Some(epoch)) {
                    svc.flush_batch(home, batch, FlushTrigger::Deadline).await;
                }
            });
        }
        gate.wait().await;
        let delivered = outcome.take();
        self.recycle_outcome_cell(outcome);
        delivered.expect("batch flush must deliver an outcome before opening the gate")
    }

    /// Pops a recycled outcome cell, or allocates the pool's first few.
    fn take_outcome_cell(&self) -> OutcomeCell {
        self.inner
            .borrow_mut()
            .outcome_pool
            .pop()
            .unwrap_or_else(|| Rc::new(Cell::new(None)))
    }

    /// Returns an outcome cell to the pool — but only if the caller holds
    /// the *last* reference. The flush task drops its clone before opening
    /// the gate, so the waiter normally does; if an appender crashed at the
    /// gate, its cell stays owned by whoever still references it and is
    /// simply never recycled (correctness over reuse).
    fn recycle_outcome_cell(&self, cell: OutcomeCell) {
        if Rc::strong_count(&cell) == 1 {
            cell.set(None);
            let mut inner = self.inner.borrow_mut();
            if inner.outcome_pool.len() < OUTCOME_POOL_CAP {
                inner.outcome_pool.push(cell);
            }
        }
    }

    /// Atomically takes `shard`'s open batch, closing it to new members.
    /// With `expected_epoch` set, claims only if no one claimed first (the
    /// deadline task's stand-down check); `None` claims unconditionally
    /// (the forced-flush path). Returns `None` if there is nothing to
    /// flush.
    fn claim_batch(&self, shard: u8, expected_epoch: Option<u64>) -> Option<ClaimedBatch<P>> {
        let mut inner = self.inner.borrow_mut();
        let inner = &mut *inner;
        let batcher = &mut inner.batchers[shard as usize];
        if batcher.pending.is_empty() || expected_epoch.is_some_and(|e| e != batcher.epoch) {
            return None;
        }
        batcher.epoch += 1;
        // Swap a recycled vector in so the next batch opens with capacity
        // already in hand (the flush returns `members` to the pool).
        let fresh = inner.batch_pool.pop().unwrap_or_default();
        Some(ClaimedBatch {
            members: std::mem::replace(&mut batcher.pending, fresh),
            gate: batcher.gate.clone(),
        })
    }

    /// Parks a size-claimed batch in `shard`'s handoff slot for the
    /// deadline task armed at `epoch`. The task is guaranteed to find it:
    /// either it already parked its waker (returned here for the caller to
    /// wake *outside* the borrow), or it has not first-polled yet — it is
    /// still sitting in the ready queue behind this appender and checks
    /// the slot on its first poll. Fails only when an earlier epoch's
    /// handoff is still unconsumed (a same-instant pile-up of two full
    /// batches); the caller then spawns a flush task for this one.
    fn hand_off_to_deadline_task(
        &self,
        shard: u8,
        epoch: u64,
        batch: ClaimedBatch<P>,
    ) -> Result<Option<Waker>, ClaimedBatch<P>> {
        let mut inner = self.inner.borrow_mut();
        let batcher = &mut inner.batchers[shard as usize];
        if batcher.handoff.is_some() {
            return Err(batch);
        }
        batcher.handoff = Some((epoch, batch));
        let waker = match &batcher.deadline_waker {
            Some((e, _)) if *e == epoch => {
                Some(batcher.deadline_waker.take().expect("checked above").1)
            }
            _ => None,
        };
        Ok(waker)
    }

    /// The armed deadline task's wait: resolves with the claimed batch if a
    /// size trigger handed one over for `epoch`, or with `None` once
    /// `delay` elapses (the caller then claims the batch itself, or stands
    /// down if the epoch moved on). Parks this task's waker in the
    /// batcher's slot so [`LogService::hand_off_to_deadline_task`] can
    /// reach it; the slot is epoch-tagged, so a stale task never consumes
    /// — or wakes for — a newer batch's work.
    async fn deadline_or_handoff(
        &self,
        shard: u8,
        epoch: u64,
        delay: Duration,
    ) -> Option<ClaimedBatch<P>> {
        let mut sleep = pin!(self.ctx.sleep(delay));
        poll_fn(|cx| {
            {
                let mut inner = self.inner.borrow_mut();
                let batcher = &mut inner.batchers[shard as usize];
                if batcher.handoff.as_ref().is_some_and(|(e, _)| *e == epoch) {
                    let (_, batch) = batcher.handoff.take().expect("checked above");
                    return Poll::Ready(Some(batch));
                }
            }
            if sleep.as_mut().poll(cx).is_ready() {
                // Deadline path: drop our parked waker (if a newer batch's
                // task already overwrote the slot, leave theirs alone).
                let mut inner = self.inner.borrow_mut();
                let batcher = &mut inner.batchers[shard as usize];
                if batcher.deadline_waker.as_ref().is_some_and(|(e, _)| *e == epoch) {
                    batcher.deadline_waker = None;
                }
                return Poll::Ready(None);
            }
            let mut inner = self.inner.borrow_mut();
            let batcher = &mut inner.batchers[shard as usize];
            match &mut batcher.deadline_waker {
                Some((e, w)) if *e == epoch => w.clone_from(cx.waker()),
                slot => *slot = Some((epoch, cx.waker().clone())),
            }
            Poll::Pending
        })
        .await
    }

    /// Runs [`LogService::flush_batch`] on a detached task. The flush is
    /// the sequencer's work: a member (or the recovery reader) that
    /// triggered it may crash mid-flush without stranding its batch peers.
    fn spawn_flush(&self, shard: u8, batch: ClaimedBatch<P>, trigger: FlushTrigger) {
        let svc = self.clone();
        self.ctx.spawn_detached(async move {
            svc.flush_batch(shard, batch, trigger).await;
        });
    }

    /// Sequences and persists one claimed batch: a single sequencer
    /// admission covers the whole batch, members install in join (= arrival)
    /// order — so the batch occupies a contiguous run of the shared clock —
    /// and one coalesced storage round-trip persists everything. Conditional
    /// members have their offset check evaluated here, atomically with the
    /// installs, exactly as the unbatched path checks at sequencing time.
    ///
    /// The coalesced write completes when its slowest member's replica
    /// write would: `quorum_storage_latency` over the **max** of the
    /// members' own storage shares. No fresh latency draw happens here, so
    /// a workload whose appends never actually share a batch consumes the
    /// exact RNG stream of an unbatched run.
    async fn flush_batch(&self, shard: u8, batch: ClaimedBatch<P>, trigger: FlushTrigger) {
        let ClaimedBatch { mut members, gate } = batch;
        debug_assert!(!members.is_empty(), "claimed batches are never empty");
        // The whole batch enters sequencing together: every member's phase
        // clock flips from BatchWait to Sequencer before the single shared
        // admission below.
        for m in &members {
            self.stamp_switch(&m.sheet, AnatomyPhase::Sequencer);
        }
        self.sequencer_admission(shard).await;
        let mut batch_storage = Duration::ZERO;
        let count = members.len() as u64;
        for m in members.drain(..) {
            batch_storage = batch_storage.max(m.storage_part);
            let outcome = match m.cond {
                None => CondAppendOutcome::Appended(self.install(shard, m.node, m.tags, m.payload)),
                Some((cond_tag, cond_pos)) => {
                    let conflict = {
                        let mut inner = self.inner.borrow_mut();
                        let state = &mut inner.shards[shard as usize];
                        let offset = state.streams.get(&cond_tag).map_or(0, Stream::len_total);
                        if offset == cond_pos {
                            None
                        } else {
                            state.counters.cond_append_conflicts += 1;
                            Some(
                                state
                                    .streams
                                    .get(&cond_tag)
                                    .and_then(|s| s.at(cond_pos))
                                    .unwrap_or(SeqNum::ZERO),
                            )
                        }
                    };
                    match conflict {
                        None => CondAppendOutcome::Appended(
                            self.install(shard, m.node, m.tags, m.payload),
                        ),
                        Some(winner) => CondAppendOutcome::Conflict(winner),
                    }
                }
            };
            match outcome {
                CondAppendOutcome::Appended(sn) => {
                    self.trace_sequencer(&m.scope, shard, "sequenced", || format!("sn{}", sn.0));
                }
                CondAppendOutcome::Conflict(winner) => {
                    self.trace_sequencer(&m.scope, shard, "cond_conflict", || {
                        format!("winner sn{}", winner.0)
                    });
                }
            }
            m.outcome.set(Some(outcome));
            // Sequenced (installs take zero simulated time); the rest of
            // this member's wait is the coalesced quorum write.
            self.stamp_switch(&m.sheet, AnatomyPhase::Quorum);
        }
        {
            let mut inner = self.inner.borrow_mut();
            let inner = &mut *inner;
            let flush = &mut inner.shards[shard as usize].flush;
            flush.flushes += 1;
            flush.records += count;
            match trigger {
                FlushTrigger::Size => flush.size_trigger += 1,
                FlushTrigger::Deadline => flush.deadline_trigger += 1,
                FlushTrigger::Forced => flush.forced_trigger += 1,
            }
            // Members are drained; hand the (empty) vector back to the
            // arena so the next claim reuses its capacity.
            if inner.batch_pool.len() < BATCH_POOL_CAP {
                inner.batch_pool.push(std::mem::take(&mut members));
            }
        }
        let storage = self.quorum_storage_latency(shard, batch_storage);
        self.ctx.sleep(storage).await;
        gate.open();
    }

    /// Force-flushes `shard`'s open batch, waiting until its members are
    /// sequenced and durable. Returns how many records the forced flush
    /// carried (0 when the batch was empty or batching is off).
    async fn force_flush(&self, shard: u8) -> u64 {
        if !self.batching_enabled() {
            return 0;
        }
        match self.claim_batch(shard, None) {
            Some(batch) => {
                let n = batch.members.len() as u64;
                let gate = batch.gate.clone();
                self.spawn_flush(shard, batch, FlushTrigger::Forced);
                gate.wait().await;
                n
            }
            None => 0,
        }
    }

    /// Group-commit accounting, aggregated across shards. All-zero while
    /// batching is off.
    #[must_use]
    pub fn flush_stats(&self) -> FlushStats {
        let inner = self.inner.borrow();
        let mut total = FlushStats::default();
        for shard in &inner.shards {
            total = total.merged(&shard.flush);
        }
        total
    }

    /// One shard's group-commit accounting.
    #[must_use]
    pub fn shard_flush_stats(&self, shard: ShardId) -> FlushStats {
        self.inner.borrow().shards[shard.0 as usize].flush
    }

    /// Records currently parked in `shard`'s open batch (test helper).
    #[must_use]
    pub fn pending_batch_len(&self, shard: ShardId) -> usize {
        self.inner.borrow().batchers[shard.0 as usize].pending.len()
    }

    /// Sequences and stores a record: draws the shared clock, stores the
    /// record on `home`'s slab, and pushes index entries into every tag's
    /// sub-stream (on whichever shard owns it). Bytes and the append
    /// counter are charged to the home shard only.
    fn install(&self, home: u8, node: NodeId, tags: TagSet, payload: P) -> SeqNum {
        let now = self.ctx.now();
        let mut inner = self.inner.borrow_mut();
        let inner = &mut *inner;
        let slot_idx = inner.shards[home as usize].slots.len() as u32;
        let seqnum = inner.router.assign(home, slot_idx);
        let bytes = payload.size_bytes() + RECORD_META_BYTES;
        let mut memberships = Memberships::with_capacity(tags.len());
        // Shards touched by this record, home first (dedup'd): each hosts
        // a copy in the appending node's per-shard cache. Scratch-backed —
        // bounded by the shard count and reused across installs.
        inner.touched_scratch.clear();
        inner.touched_scratch.push(home);
        for &tag in tags.as_slice() {
            let shard = inner.router.shard_of(tag).0;
            if !inner.touched_scratch.contains(&shard) {
                inner.touched_scratch.push(shard);
            }
            let stream = inner.shards[shard as usize].streams.entry(tag).or_default();
            memberships.push(tag, stream.len_total() as u64);
            stream.seqnums.push(seqnum);
        }
        let live_streams = tags.len() as u32;
        let record = Rc::new(LogRecord {
            seqnum,
            shard: ShardId(home),
            tags,
            payload,
        });
        let state = &mut inner.shards[home as usize];
        state.slots.push(Some(RecordSlot {
            record,
            memberships,
            live_streams,
            bytes,
        }));
        state.live += 1;
        // The appending node caches its own record, on every shard whose
        // streams index it (exactly one insert in a 1-shard topology).
        for i in 0..inner.touched_scratch.len() {
            let shard = inner.touched_scratch[i];
            inner.shards[shard as usize].cache_for(node).insert(seqnum);
        }
        let state = &mut inner.shards[home as usize];
        state.bytes.add(now, bytes as f64);
        state.counters.log_appends += 1;
        seqnum
    }

    /// Reads the latest record in `tag`'s sub-stream with seqnum ≤
    /// `max_seqnum` (Figure 3's `logReadPrev`).
    pub async fn read_prev(
        &self,
        node: NodeId,
        tag: Tag,
        max_seqnum: SeqNum,
    ) -> Option<Rc<LogRecord<P>>> {
        let scope = self.trace_begin("log_read_prev");
        let sheet = self.stamp_begin(AnatomyPhase::LogRead);
        let (shard, found) = {
            let inner = self.inner.borrow();
            let shard = inner.router.shard_of(tag).0;
            let found = inner.shards[shard as usize].streams.get(&tag).and_then(|s| {
                if max_seqnum == SeqNum::MAX {
                    // Newest record: the common "read the tail" case.
                    s.seqnums.last().copied()
                } else if let Some(off) = inner.offset_in_stream(max_seqnum, tag) {
                    // The bound names a live member of this stream: its
                    // stored offset answers directly (None once trimmed —
                    // everything at or below it is gone from the stream).
                    s.at(off as usize)
                } else {
                    let idx = s.seqnums.partition_point(|&sn| sn <= max_seqnum);
                    idx.checked_sub(1).and_then(|i| s.seqnums.get(i).copied())
                }
            });
            (shard, found)
        };
        self.pay_read(shard, node, found, &scope).await;
        self.trace_end(&scope);
        self.stamp_end(&sheet);
        found.map(|sn| self.fetch(sn))
    }

    /// Reads the earliest record in `tag`'s sub-stream with seqnum ≥
    /// `min_seqnum` (Figure 3's `logReadNext`).
    pub async fn read_next(
        &self,
        node: NodeId,
        tag: Tag,
        min_seqnum: SeqNum,
    ) -> Option<Rc<LogRecord<P>>> {
        let scope = self.trace_begin("log_read_next");
        let sheet = self.stamp_begin(AnatomyPhase::LogRead);
        let (shard, found) = {
            let inner = self.inner.borrow();
            let shard = inner.router.shard_of(tag).0;
            let found = inner.shards[shard as usize].streams.get(&tag).and_then(|s| {
                match s.seqnums.first().copied() {
                    Some(first) if min_seqnum <= first => Some(first),
                    Some(_) => {
                        if let Some(off) = inner.offset_in_stream(min_seqnum, tag) {
                            // Live member at or past the trim front: the
                            // bound itself is the answer. Trimmed member:
                            // every live entry is newer, so the front is.
                            s.at(off as usize).or_else(|| s.seqnums.first().copied())
                        } else {
                            let idx = s.seqnums.partition_point(|&sn| sn < min_seqnum);
                            s.seqnums.get(idx).copied()
                        }
                    }
                    None => None,
                }
            });
            (shard, found)
        };
        self.pay_read(shard, node, found, &scope).await;
        self.trace_end(&scope);
        self.stamp_end(&sheet);
        found.map(|sn| self.fetch(sn))
    }

    /// Retrieves every live record of a sub-stream (Figure 5's
    /// `getStepLogs`). Costs one read round; Boki batches this scan.
    pub async fn read_stream(&self, node: NodeId, tag: Tag) -> Vec<Rc<LogRecord<P>>> {
        let scope = self.trace_begin("log_read_stream");
        let sheet = self.stamp_begin(AnatomyPhase::LogRead);
        // Snapshot the stream's seqnums into the recycled scratch buffer —
        // taken out of the service (not borrowed) because the read sleeps
        // below; a reentrant reader just falls back to a fresh vector.
        let (shard, mut seqnums) = {
            let mut inner = self.inner.borrow_mut();
            let inner = &mut *inner;
            let shard = inner.router.shard_of(tag).0;
            let mut buf = std::mem::take(&mut inner.stream_scratch);
            buf.clear();
            if let Some(s) = inner.shards[shard as usize].streams.get(&tag) {
                buf.extend_from_slice(&s.seqnums);
            }
            (shard, buf)
        };
        self.pay_read(shard, node, seqnums.first().copied(), &scope).await;
        self.trace_end(&scope);
        self.stamp_end(&sheet);
        let records = seqnums.iter().map(|&sn| self.fetch(sn)).collect();
        seqnums.clear();
        self.inner.borrow_mut().stream_scratch = seqnums;
        records
    }

    /// [`LogService::read_stream`] plus §5 recovery accounting: how many
    /// live records the caller must replay and where the stream's trim
    /// horizon sits (records already folded into a checkpoint and trimmed
    /// — the replay starts after them, which is what keeps recovery cost
    /// proportional to the *untrimmed* suffix, not the full history).
    ///
    /// With batching off, latency, RNG draws, and cache effects are
    /// exactly those of `read_stream`; only the returned [`ReplayStats`]
    /// differ, so a caller that ignores the stats is bit-identical to one
    /// calling `read_stream` directly.
    ///
    /// With batching on, the call first **force-flushes** the tag's home
    /// shard's open batch and waits for it to become durable, so the read
    /// observes every record the sequencer has accepted — a successor must
    /// not miss records its predecessor parked in a batch right before
    /// crashing. Those records are reported in
    /// [`ReplayStats::pending_flushed`] and counted once (not twice) in
    /// [`ReplayStats::replayed`].
    pub async fn replay_stream(&self, node: NodeId, tag: Tag) -> (Vec<Rc<LogRecord<P>>>, ReplayStats) {
        let pending_flushed = if self.batching_enabled() {
            let shard = self.inner.borrow().router.shard_of(tag).0;
            self.force_flush(shard).await
        } else {
            0
        };
        let trimmed = {
            let inner = self.inner.borrow();
            let shard = inner.router.shard_of(tag).0;
            inner.shards[shard as usize]
                .streams
                .get(&tag)
                .map_or(0, |s| s.trimmed as u64)
        };
        let records = self.read_stream(node, tag).await;
        let stats = ReplayStats {
            replayed: records.len() as u64,
            trimmed,
            pending_flushed,
        };
        (records, stats)
    }

    /// Deletes all records of `tag`'s sub-stream with seqnum ≤ `upto`
    /// (Figure 3's `logTrim`). A record's bytes are reclaimed once every
    /// one of its sub-streams — on any shard — has trimmed past it.
    pub async fn trim(&self, node: NodeId, tag: Tag, upto: SeqNum) {
        let _ = node;
        let scope = self.trace_begin("log_trim");
        let total = self.ctx.with_rng(|rng| self.model.log_append.sample(rng));
        self.ctx.sleep(total).await;
        let now = self.ctx.now();
        let mut inner = self.inner.borrow_mut();
        let inner = &mut *inner;
        let home = inner.router.shard_of(tag).0 as usize;
        inner.shards[home].counters.log_trims += 1;
        if !inner.shards[home].streams.contains_key(&tag) {
            self.trace_end(&scope);
            return;
        }
        // Cut point: O(1) from the bound record's stored offset when it is
        // a live member of this stream; binary search otherwise.
        let cut = {
            let bound_offset = inner
                .router
                .locate(upto)
                .and_then(|(s, slot)| inner.shards[s as usize].slot(slot))
                .and_then(|slot| slot.memberships.last_offset_of(tag));
            let stream = &inner.shards[home].streams[&tag];
            match bound_offset {
                Some(off) => (off as usize + 1).saturating_sub(stream.trimmed),
                None => stream.seqnums.partition_point(|&sn| sn <= upto),
            }
        };
        // Scratch-backed drain: the trimmed entries and the per-shard
        // freed-bytes tally reuse the service's buffers across trims.
        inner.trim_scratch.clear();
        {
            let stream = inner.shards[home].streams.get_mut(&tag).expect("checked above");
            inner.trim_scratch.extend(stream.seqnums.drain(..cut));
            stream.trimmed += cut;
        }
        inner.freed_scratch.clear();
        inner.freed_scratch.resize(inner.shards.len(), 0);
        for i in 0..inner.trim_scratch.len() {
            let sn = inner.trim_scratch[i];
            // Each drained entry is one stream membership dying; the record
            // is reclaimed — from its *owning* shard's slab — exactly when
            // its last membership dies, so bytes are freed exactly once per
            // record, no matter how its tags were routed.
            let (owner, slot_idx) = inner
                .router
                .locate(sn)
                .expect("stream entry without a clock assignment");
            let (owner, slot_idx) = (owner as usize, slot_idx as usize);
            let slot = inner.shards[owner].slots[slot_idx]
                .as_mut()
                .expect("stream index referenced a reclaimed record");
            slot.live_streams -= 1;
            if slot.live_streams == 0 {
                inner.freed_scratch[owner] += slot.bytes;
                inner.shards[owner].slots[slot_idx] = None;
                inner.shards[owner].live -= 1;
            }
        }
        let freed_total: usize = inner.freed_scratch.iter().sum();
        for (shard, &bytes) in inner.freed_scratch.iter().enumerate() {
            // The home shard's gauge always records the trim (even a
            // zero-byte one); foreign shards only when a record of theirs
            // actually died.
            if shard == home || bytes > 0 {
                inner.shards[shard].bytes.add(now, -(bytes as f64));
            }
        }
        if let Some((tracer, trace, span)) = &scope {
            tracer.instant(
                Lane::Storage,
                now,
                *trace,
                *span,
                "trim_reclaimed",
                format!("{cut} entries, {freed_total} bytes"),
            );
        }
        self.trace_end(&scope);
    }

    /// Pays a read round against `shard`'s storage and the reading node's
    /// per-shard cache.
    async fn pay_read(&self, shard: u8, node: NodeId, target: Option<SeqNum>, scope: &TraceScope) {
        let hit = match target {
            Some(sn) => {
                let mut inner = self.inner.borrow_mut();
                let state = &mut inner.shards[shard as usize];
                let hit = state.cache_for(node).contains(&sn);
                if hit {
                    state.counters.cache_hits += 1;
                } else {
                    state.counters.cache_misses += 1;
                }
                hit
            }
            // Absent records answer from the node's stream index: cheap.
            None => true,
        };
        if let Some((tracer, trace, span)) = scope {
            if target.is_some() {
                tracer.instant(
                    Lane::Node(node.0),
                    self.ctx.now(),
                    *trace,
                    *span,
                    if hit { "cache_hit" } else { "cache_miss" },
                    String::new(),
                );
            }
        }
        let dist = if hit {
            self.model.log_read_cached
        } else {
            self.model.log_read_miss
        };
        let latency = self.ctx.with_rng(|rng| dist.sample(rng));
        self.ctx.sleep(latency).await;
        let mut inner = self.inner.borrow_mut();
        let state = &mut inner.shards[shard as usize];
        state.counters.log_reads += 1;
        if let Some(sn) = target {
            // Refreshes recency on hit, fills (and possibly evicts) on miss.
            state.cache_for(node).insert(sn);
        }
    }

    fn fetch(&self, sn: SeqNum) -> Rc<LogRecord<P>> {
        self.inner
            .borrow()
            .locate_slot(sn)
            .map(|s| s.record.clone())
            .expect("stream index referenced a reclaimed record")
    }

    // ---- zero-latency inspection for tests, checkers, and the GC scan ----

    /// The seqnum the next sequencing decision will receive (shared clock).
    #[must_use]
    pub fn head_seqnum(&self) -> SeqNum {
        self.inner.borrow().router.head()
    }

    /// Live record count, across all shards.
    #[must_use]
    pub fn live_records(&self) -> usize {
        self.inner.borrow().shards.iter().map(|s| s.live).sum()
    }

    /// Current stored bytes, across all shards.
    #[must_use]
    pub fn current_bytes(&self) -> f64 {
        self.inner.borrow().shards.iter().map(|s| s.bytes.level()).sum()
    }

    /// Current stored bytes on one shard.
    #[must_use]
    pub fn shard_current_bytes(&self, shard: ShardId) -> f64 {
        self.inner.borrow().shards[shard.0 as usize].bytes.level()
    }

    /// Time-averaged stored bytes since the last window reset, summed
    /// across shards.
    #[must_use]
    pub fn average_bytes(&self) -> f64 {
        let now = self.ctx.now();
        self.inner.borrow().shards.iter().map(|s| s.bytes.average(now)).sum()
    }

    /// Restarts every shard's storage-averaging window now.
    pub fn reset_storage_window(&self) {
        let now = self.ctx.now();
        for shard in &mut self.inner.borrow_mut().shards {
            shard.bytes.reset_window(now);
        }
    }

    /// Snapshot of op counters, aggregated across shards.
    #[must_use]
    pub fn counters(&self) -> OpCounters {
        let inner = self.inner.borrow();
        let mut total = OpCounters::default();
        for shard in &inner.shards {
            total = total.merged(&shard.counters);
        }
        total
    }

    /// Snapshot of one shard's op counters.
    #[must_use]
    pub fn shard_counters(&self, shard: ShardId) -> OpCounters {
        self.inner.borrow().shards[shard.0 as usize].counters
    }

    /// Appends sequenced by each shard, in shard order — the per-lane
    /// load the saturation sweep and the gateway's per-shard rates read.
    #[must_use]
    pub fn shard_appends(&self) -> Vec<u64> {
        self.inner
            .borrow()
            .shards
            .iter()
            .map(|s| s.counters.log_appends)
            .collect()
    }

    /// Discards every record cached by `node`, on every shard — what a
    /// node crash does to its record cache (§5: the successor restarts
    /// cold and pays miss-latency reads until the cache re-warms).
    /// Eviction counters are preserved; cache-pressure accounting is
    /// about capacity, not crashes.
    pub fn clear_node_cache(&self, node: NodeId) {
        let mut inner = self.inner.borrow_mut();
        for shard in &mut inner.shards {
            if let Some(cache) = shard.node_cache.get_mut(node.0 as usize) {
                cache.clear();
            }
        }
    }

    /// Records currently held in `node`'s caches, across shards (test
    /// helper).
    #[must_use]
    pub fn node_cache_len(&self, node: NodeId) -> usize {
        self.inner
            .borrow()
            .shards
            .iter()
            .map(|s| s.node_cache.get(node.0 as usize).map_or(0, hm_common::collections::LruSet::len))
            .sum()
    }

    /// Total evictions from `node`'s caches since creation, across shards
    /// (test helper).
    #[must_use]
    pub fn node_cache_evictions(&self, node: NodeId) -> u64 {
        self.inner
            .borrow()
            .shards
            .iter()
            .map(|s| s.node_cache.get(node.0 as usize).map_or(0, hm_common::collections::LruSet::evictions))
            .sum()
    }

    /// Zero-latency peek at a sub-stream's live seqnums (test helper).
    #[must_use]
    pub fn peek_stream(&self, tag: Tag) -> Vec<SeqNum> {
        let inner = self.inner.borrow();
        let shard = inner.router.shard_of(tag).0 as usize;
        inner.shards[shard]
            .streams
            .get(&tag)
            .map_or_else(Vec::new, |s| s.seqnums.clone())
    }

    /// Zero-latency record fetch by seqnum (checker helper).
    #[must_use]
    pub fn peek_record(&self, sn: SeqNum) -> Option<Rc<LogRecord<P>>> {
        self.inner.borrow().locate_slot(sn).map(|s| s.record.clone())
    }
}

impl<P> std::fmt::Debug for LogService<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        write!(
            f,
            "LogService(shards={}, head={:?}, live={}, streams={})",
            inner.shards.len(),
            inner.router.head(),
            inner.shards.iter().map(|s| s.live).sum::<usize>(),
            inner.shards.iter().map(|s| s.streams.len()).sum::<usize>(),
        )
    }
}

#[cfg(test)]
mod tests {
    use hm_common::ids::TagKind;
    use hm_substrate::{sim::Sim, Time};

    use super::*;

    const N0: NodeId = NodeId(0);
    const N1: NodeId = NodeId(1);

    fn setup() -> (Sim, LogService<String>) {
        let sim = Sim::new(11);
        let log = LogService::new(
            sim.ctx(),
            LatencyModel::uniform_test_model(),
            LogConfig::default(),
        );
        (sim, log)
    }

    fn t(name: &str) -> Tag {
        Tag::named(TagKind::StepLog, name)
    }

    #[test]
    fn append_assigns_increasing_seqnums() {
        let (mut sim, log) = setup();
        let l = log.clone();
        let (a, b) = sim.block_on(async move {
            let a = l.append(N0, vec![t("s")], "one".into()).await;
            let b = l.append(N0, vec![t("s")], "two".into()).await;
            (a, b)
        });
        assert!(a < b);
        assert_eq!(a, SeqNum(1));
        assert_eq!(log.head_seqnum(), SeqNum(3));
    }

    #[test]
    fn concurrent_appends_order_by_sequencer_arrival() {
        let (mut sim, log) = setup();
        let ctx = sim.ctx();
        let l1 = log.clone();
        let l2 = log;
        let ctx2 = ctx.clone();
        let h1 = ctx.spawn(async move { l1.append(N0, vec![t("a")], "first".into()).await });
        let h2 = ctx.spawn(async move {
            // Starts 1µs later; sequencer sees it second.
            ctx2.sleep(Time::from_micros(1)).await;
            l2.append(N1, vec![t("b")], "second".into()).await
        });
        sim.run();
        assert_eq!(h1.try_take().unwrap(), SeqNum(1));
        assert_eq!(h2.try_take().unwrap(), SeqNum(2));
    }

    #[test]
    fn read_prev_seeks_backward_inclusive() {
        let (mut sim, log) = setup();
        let l = log;
        sim.block_on(async move {
            let s1 = l.append(N0, vec![t("k")], "v1".into()).await;
            let _s2 = l.append(N0, vec![t("k")], "v2".into()).await;
            // Bound exactly at s1: sees v1.
            let r = l.read_prev(N0, t("k"), s1).await.unwrap();
            assert_eq!(r.payload, "v1");
            // Bound at MAX: sees the newest.
            let r = l.read_prev(N0, t("k"), SeqNum::MAX).await.unwrap();
            assert_eq!(r.payload, "v2");
            // Bound before everything: none.
            assert!(l.read_prev(N0, t("k"), SeqNum::ZERO).await.is_none());
        });
    }

    #[test]
    fn read_next_seeks_forward_inclusive() {
        let (mut sim, log) = setup();
        let l = log;
        sim.block_on(async move {
            let s1 = l.append(N0, vec![t("k")], "v1".into()).await;
            let s2 = l.append(N0, vec![t("k")], "v2".into()).await;
            let r = l.read_next(N0, t("k"), s1).await.unwrap();
            assert_eq!(r.seqnum, s1);
            let r = l.read_next(N0, t("k"), s1.next()).await.unwrap();
            assert_eq!(r.seqnum, s2);
            assert!(l.read_next(N0, t("k"), s2.next()).await.is_none());
        });
    }

    #[test]
    fn multi_tag_records_visible_in_all_streams() {
        let (mut sim, log) = setup();
        let l = log;
        sim.block_on(async move {
            let sn = l.append(N0, vec![t("step"), t("obj")], "w".into()).await;
            assert_eq!(
                l.read_prev(N0, t("step"), SeqNum::MAX)
                    .await
                    .unwrap()
                    .seqnum,
                sn
            );
            assert_eq!(
                l.read_prev(N0, t("obj"), SeqNum::MAX).await.unwrap().seqnum,
                sn
            );
        });
    }

    #[test]
    fn read_stream_returns_history_in_order() {
        let (mut sim, log) = setup();
        let l = log;
        sim.block_on(async move {
            for i in 0..4 {
                l.append(N0, vec![t("hist")], format!("r{i}")).await;
            }
            let recs = l.read_stream(N0, t("hist")).await;
            let vals: Vec<&str> = recs.iter().map(|r| r.payload.as_str()).collect();
            assert_eq!(vals, vec!["r0", "r1", "r2", "r3"]);
        });
    }

    #[test]
    fn cond_append_success_then_conflict() {
        let (mut sim, log) = setup();
        let l = log;
        sim.block_on(async move {
            let tag = t("inst");
            let out = l.cond_append(N0, vec![tag], "step0".into(), tag, 0).await;
            let CondAppendOutcome::Appended(first) = out else {
                panic!("expected success, got {out:?}")
            };
            // A peer retries step 0: conflicts and learns the winner.
            let out = l
                .cond_append(N1, vec![tag], "step0-dup".into(), tag, 0)
                .await;
            assert_eq!(out, CondAppendOutcome::Conflict(first));
            // Stream contains only the winner.
            assert_eq!(l.peek_stream(tag).len(), 1);
            assert_eq!(l.counters().cond_append_conflicts, 1);
            // Seqnums of undone appends are not reused but nothing is stored.
            let out = l.cond_append(N1, vec![tag], "step1".into(), tag, 1).await;
            assert!(matches!(out, CondAppendOutcome::Appended(_)));
        });
    }

    #[test]
    fn cond_append_racing_peers_single_winner() {
        let (mut sim, log) = setup();
        let ctx = sim.ctx();
        let tag = t("race");
        let mut handles = Vec::new();
        for i in 0..4u32 {
            let l = log.clone();
            handles.push(ctx.spawn(async move {
                l.cond_append(NodeId(i), vec![tag], format!("peer{i}"), tag, 0)
                    .await
            }));
        }
        sim.run();
        let outcomes: Vec<CondAppendOutcome> =
            handles.iter().map(|h| h.try_take().unwrap()).collect();
        let winners = outcomes
            .iter()
            .filter(|o| matches!(o, CondAppendOutcome::Appended(_)))
            .count();
        assert_eq!(winners, 1, "exactly one peer must win: {outcomes:?}");
        let winner_sn = log.peek_stream(tag)[0];
        for o in outcomes {
            if let CondAppendOutcome::Conflict(sn) = o {
                assert_eq!(sn, winner_sn);
            }
        }
    }

    #[test]
    fn trim_removes_prefix_and_keeps_offsets_stable() {
        let (mut sim, log) = setup();
        let l = log;
        sim.block_on(async move {
            let tag = t("gc");
            let mut sns = Vec::new();
            for i in 0..5 {
                sns.push(l.append(N0, vec![tag], format!("r{i}")).await);
            }
            l.trim(N0, tag, sns[2]).await;
            assert_eq!(l.peek_stream(tag), vec![sns[3], sns[4]]);
            assert_eq!(l.live_records(), 2);
            // cond_append offsets still count trimmed records.
            let out = l.cond_append(N0, vec![tag], "r5".into(), tag, 5).await;
            assert!(matches!(out, CondAppendOutcome::Appended(_)), "{out:?}");
        });
    }

    #[test]
    fn trim_respects_multi_tag_references() {
        let (mut sim, log) = setup();
        let l = log;
        sim.block_on(async move {
            let (a, b) = (t("a"), t("b"));
            let sn = l.append(N0, vec![a, b], "shared".into()).await;
            let solo = l.append(N0, vec![a], "solo".into()).await;
            l.trim(N0, a, solo).await;
            // The shared record survives via stream b.
            assert_eq!(l.live_records(), 1);
            assert_eq!(l.read_prev(N0, b, SeqNum::MAX).await.unwrap().seqnum, sn);
            l.trim(N0, b, sn).await;
            assert_eq!(l.live_records(), 0);
            assert_eq!(l.current_bytes(), 0.0);
        });
    }

    /// Regression test for trim byte accounting (the refcount rewrite's
    /// correctness obligation): across interleaved trims, revived streams,
    /// shared multi-tag records, and duplicated tags, every record's bytes
    /// must be freed exactly once — never double-freed (gauge would go
    /// negative) and never leaked (gauge would end above zero).
    #[test]
    fn trim_byte_accounting_exact_through_retag_cycles() {
        let (mut sim, log) = setup();
        let l = log;
        sim.block_on(async move {
            let (a, b) = (t("cycle_a"), t("cycle_b"));
            // Shared record, then a solo record on `a`.
            let shared = l.append(N0, vec![a, b], "shared".into()).await;
            l.append(N0, vec![a], "solo".into()).await;
            // Trim `a` past both: only the solo record's bytes are freed;
            // the shared one survives via `b`.
            l.trim(N0, a, l.head_seqnum()).await;
            let shared_bytes = ("shared".len() + RECORD_META_BYTES) as f64;
            assert_eq!(l.current_bytes(), shared_bytes);
            assert_eq!(l.live_records(), 1);
            // Revive the trimmed stream `a`, then trim it again. The shared
            // record's `a` membership is already dead — a second trim of
            // `a` must not touch it (double-decrement would double-free).
            l.append(N0, vec![a], "revive".into()).await;
            l.trim(N0, a, l.head_seqnum()).await;
            assert_eq!(l.current_bytes(), shared_bytes, "shared must survive");
            // Now kill the last membership via `b`: bytes drop to exactly 0.
            l.trim(N0, b, shared).await;
            assert_eq!(l.current_bytes(), 0.0);
            assert_eq!(l.live_records(), 0);
            // Duplicated tags: one record, two memberships in one stream.
            // One trim covers both; bytes freed exactly once.
            l.append(N0, vec![a, a], "dup".into()).await;
            assert_eq!(l.peek_stream(a).len(), 2);
            l.trim(N0, a, l.head_seqnum()).await;
            assert_eq!(l.current_bytes(), 0.0, "dup-tag record freed once");
            assert_eq!(l.live_records(), 0);
            // A full cycle of revive-and-trim ends exactly where it began.
            for i in 0..3 {
                l.append(N0, vec![a, b], format!("r{i}")).await;
            }
            l.trim(N0, a, l.head_seqnum()).await;
            l.trim(N0, b, l.head_seqnum()).await;
            assert_eq!(l.current_bytes(), 0.0);
            assert_eq!(l.live_records(), 0);
        });
    }

    #[test]
    fn shared_bytes_payload_charges_logical_size_once() {
        let mut sim = Sim::new(11);
        let log: LogService<hm_common::SharedBytes> = LogService::new(
            sim.ctx(),
            LatencyModel::uniform_test_model(),
            LogConfig::default(),
        );
        let l = log;
        sim.block_on(async move {
            let (a, b) = (t("sb_a"), t("sb_b"));
            let buf = hm_common::SharedBytes::copy_from(&[7u8; 100]);
            // Two records over one backing buffer: each charges its full
            // logical length (the paper's storage units are per record,
            // not per heap allocation), and the zero-copy clone/slice
            // machinery must not make the charge depend on sharing.
            l.append(N0, [a], buf.clone()).await;
            l.append(N0, [b], buf.slice(0, 100)).await;
            let full = (100 + RECORD_META_BYTES) as f64;
            assert_eq!(l.current_bytes(), 2.0 * full);
            // A narrower view charges its view length, not the backing
            // buffer's capacity.
            l.append(N0, [a], buf.slice(0, 10)).await;
            let narrow = (10 + RECORD_META_BYTES) as f64;
            assert_eq!(l.current_bytes(), 2.0 * full + narrow);
            // Trim frees exactly what install charged, even though the
            // caller (and any replica holding a refcount clone) still
            // keeps the backing buffer alive.
            l.trim(N0, a, l.head_seqnum()).await;
            assert_eq!(l.current_bytes(), full, "only b's record remains");
            l.trim(N0, b, l.head_seqnum()).await;
            assert_eq!(l.current_bytes(), 0.0);
            assert_eq!(l.live_records(), 0);
            assert_eq!(buf.as_slice()[0], 7, "caller's view unaffected");
        });
    }

    #[test]
    fn trim_bound_past_duplicate_tags_removes_all_copies() {
        let (mut sim, log) = setup();
        let l = log;
        sim.block_on(async move {
            let a = t("dup_bound");
            // The bound record itself carries the tag twice: the O(1) cut
            // derived from its stored offset must cover both copies.
            let sn = l.append(N0, vec![a, a], "dd".into()).await;
            l.trim(N0, a, sn).await;
            assert!(l.peek_stream(a).is_empty());
            assert_eq!(l.live_records(), 0);
            assert_eq!(l.current_bytes(), 0.0);
        });
    }

    #[test]
    fn storage_accounting_tracks_payload_and_meta() {
        let (mut sim, log) = setup();
        let l = log.clone();
        sim.block_on(async move {
            l.append(N0, vec![t("x")], "12345".into()).await; // 5 bytes payload
        });
        assert_eq!(log.current_bytes(), (5 + RECORD_META_BYTES) as f64);
    }

    #[test]
    fn cached_read_is_faster_than_miss() {
        // Node 0 appends; node 1's first read misses, second hits.
        let (mut sim, log) = setup();
        let l = log.clone();
        let ctx = sim.ctx();
        sim.block_on(async move {
            l.append(N0, vec![t("c")], "v".into()).await;
            let start = ctx.now();
            l.read_prev(N1, t("c"), SeqNum::MAX).await;
            let miss_cost = ctx.now() - start;
            let start = ctx.now();
            l.read_prev(N1, t("c"), SeqNum::MAX).await;
            let hit_cost = ctx.now() - start;
            // Test model: miss 0.3ms, hit 0.1ms.
            assert!(
                miss_cost > hit_cost,
                "miss {miss_cost:?} vs hit {hit_cost:?}"
            );
            // The appender reads its own record from cache immediately.
            let start = ctx.now();
            l.read_prev(N0, t("c"), SeqNum::MAX).await;
            assert_eq!(ctx.now() - start, Time::from_micros(100));
        });
        let c = log.counters();
        assert_eq!(c.cache_misses, 1, "only node 1's first read missed");
        assert_eq!(c.cache_hits, 2);
    }

    #[test]
    fn empty_stream_reads_are_cheap_and_none() {
        let (mut sim, log) = setup();
        let l = log.clone();
        sim.block_on(async move {
            assert!(l.read_prev(N0, t("none"), SeqNum::MAX).await.is_none());
            assert!(l.read_next(N0, t("none"), SeqNum::ZERO).await.is_none());
            assert!(l.read_stream(N0, t("none")).await.is_empty());
        });
        let c = log.counters();
        assert_eq!(c.log_reads, 3);
        // Reads that found nothing touch no cache bucket.
        assert_eq!(c.cache_hits + c.cache_misses, 0);
    }

    #[test]
    fn node_cache_evicts_under_capacity_pressure() {
        let mut sim = Sim::new(12);
        let log: LogService<String> = LogService::new(
            sim.ctx(),
            LatencyModel::uniform_test_model(),
            LogConfig {
                node_cache_capacity: 2,
                ..LogConfig::default()
            },
        );
        let l = log;
        sim.block_on(async move {
            // Three appends from node 0: its cache (capacity 2) must evict
            // the first record.
            let s1 = l.append(N0, vec![t("e1")], "a".into()).await;
            let _s2 = l.append(N0, vec![t("e2")], "b".into()).await;
            let _s3 = l.append(N0, vec![t("e3")], "c".into()).await;
            assert_eq!(l.node_cache_len(N0), 2);
            assert_eq!(l.node_cache_evictions(N0), 1);
            // Reading the evicted record is a miss — and pays miss latency.
            let start = l.read_prev(N0, t("e1"), s1).await.unwrap().seqnum;
            assert_eq!(start, s1);
            let c = l.counters();
            assert_eq!(c.cache_misses, 1, "evicted record must miss");
            // The miss refilled the cache (evicting the next-oldest entry),
            // so an immediate re-read hits.
            l.read_prev(N0, t("e1"), s1).await;
            assert_eq!(l.counters().cache_hits, 1);
            assert_eq!(l.node_cache_evictions(N0), 2);
        });
    }

    #[test]
    fn pay_read_latency_tracks_eviction() {
        let mut sim = Sim::new(13);
        let log: LogService<String> = LogService::new(
            sim.ctx(),
            LatencyModel::uniform_test_model(),
            LogConfig {
                node_cache_capacity: 1,
                ..LogConfig::default()
            },
        );
        let l = log;
        let ctx = sim.ctx();
        sim.block_on(async move {
            let s1 = l.append(N0, vec![t("p1")], "a".into()).await;
            // s1 is cached (capacity 1). Reading it now is a cached read:
            // exactly the 0.1 ms hit latency of the test model.
            let start = ctx.now();
            l.read_prev(N0, t("p1"), s1).await;
            assert_eq!(ctx.now() - start, Time::from_micros(100));
            // A second append evicts s1 from the single-slot cache.
            l.append(N0, vec![t("p2")], "b".into()).await;
            // Now the same read pays the full 0.3 ms miss latency.
            let start = ctx.now();
            l.read_prev(N0, t("p1"), s1).await;
            assert_eq!(ctx.now() - start, Time::from_micros(300));
            let c = l.counters();
            assert_eq!((c.cache_hits, c.cache_misses), (1, 1));
        });
    }

    #[test]
    fn node_caches_are_independent() {
        let (mut sim, log) = setup();
        let l = log;
        sim.block_on(async move {
            let sn = l.append(N0, vec![t("i")], "v".into()).await;
            // Node 0 (appender) hits; nodes 1 and 2 each miss once.
            l.read_prev(N0, t("i"), sn).await;
            l.read_prev(N1, t("i"), sn).await;
            l.read_prev(NodeId(2), t("i"), sn).await;
            l.read_prev(NodeId(2), t("i"), sn).await;
            let c = l.counters();
            assert_eq!(c.cache_hits, 2, "node 0 + node 2's second read");
            assert_eq!(c.cache_misses, 2, "nodes 1 and 2 first reads");
        });
    }

    #[test]
    fn read_bounds_resolve_via_stored_offsets_after_trim() {
        // Exercises the O(1) bound-resolution paths: bounds that name live,
        // trimmed, and foreign records must all agree with the definition
        // (latest ≤ max / earliest ≥ min over the live stream).
        let (mut sim, log) = setup();
        let l = log;
        sim.block_on(async move {
            let (a, other) = (t("off_a"), t("off_o"));
            let mut sns = Vec::new();
            for i in 0..6 {
                sns.push(l.append(N0, vec![a], format!("r{i}")).await);
            }
            // A record of a different stream, interleaved in seqnum order.
            let foreign = l.append(N0, vec![other], "f".into()).await;
            l.trim(N0, a, sns[2]).await;
            // Live bound: resolves through its stored offset.
            assert_eq!(l.read_prev(N0, a, sns[4]).await.unwrap().seqnum, sns[4]);
            assert_eq!(l.read_next(N0, a, sns[4]).await.unwrap().seqnum, sns[4]);
            // Trimmed bound: read_prev sees nothing at or below it;
            // read_next jumps to the live front.
            assert!(l.read_prev(N0, a, sns[1]).await.is_none());
            assert_eq!(l.read_next(N0, a, sns[1]).await.unwrap().seqnum, sns[3]);
            // Bound that is a live record of a *different* stream: falls
            // back to the search path and still answers correctly.
            assert_eq!(l.read_prev(N0, a, foreign).await.unwrap().seqnum, sns[5]);
            assert!(l.read_next(N0, a, foreign).await.is_none());
        });
    }

    #[test]
    fn replay_stream_reports_trim_horizon() {
        let (mut sim, log) = setup();
        let l = log;
        sim.block_on(async move {
            let tag = t("replay");
            let mut sns = Vec::new();
            for i in 0..5 {
                sns.push(l.append(N0, vec![tag], format!("r{i}")).await);
            }
            // Before any trim: the whole stream is replayed.
            let (recs, stats) = l.replay_stream(N0, tag).await;
            assert_eq!(recs.len(), 5);
            assert_eq!(stats, ReplayStats { replayed: 5, ..ReplayStats::default() });
            // After trimming past the first two, replay starts at the
            // horizon: only the untrimmed suffix is re-read.
            l.trim(N0, tag, sns[1]).await;
            let (recs, stats) = l.replay_stream(N0, tag).await;
            assert_eq!(recs.len(), 3);
            assert_eq!(
                stats,
                ReplayStats { replayed: 3, trimmed: 2, pending_flushed: 0 }
            );
            // Unknown stream: nothing to replay, nothing trimmed.
            let (recs, stats) = l.replay_stream(N0, t("never-written")).await;
            assert!(recs.is_empty());
            assert_eq!(stats, ReplayStats::default());
        });
    }

    #[test]
    fn clear_node_cache_forces_cold_reads() {
        let (mut sim, log) = setup();
        let l = log;
        sim.block_on(async move {
            let tag = t("cold");
            l.append(N0, vec![tag], "v".into()).await;
            // The appending node cached its own record: warm read.
            l.read_prev(N0, tag, SeqNum::MAX).await.unwrap();
            assert_eq!(l.counters().cache_hits, 1);
            assert_eq!(l.counters().cache_misses, 0);
            l.clear_node_cache(N0);
            assert_eq!(l.node_cache_len(N0), 0);
            l.read_prev(N0, tag, SeqNum::MAX).await.unwrap(); // cold again
            assert_eq!(l.counters().cache_hits, 1);
            assert_eq!(l.counters().cache_misses, 1);
            // Other nodes' caches are untouched by a crash of N0.
            l.read_prev(N1, tag, SeqNum::MAX).await.unwrap();
            l.clear_node_cache(N0);
            assert_eq!(l.node_cache_len(N1), 1);
        });
    }

    #[test]
    fn stalled_sequencer_delays_appends_without_losing_them() {
        let (mut sim, log) = setup();
        let ctx = sim.ctx();
        let l = log.clone();
        let (stalled_ms, healthy_ms) = sim.block_on(async move {
            l.stall_sequencer(ShardId(0), Duration::from_millis(5));
            let start = ctx.now();
            l.append(N0, vec![t("s")], "delayed".into()).await;
            let stalled_ms = (ctx.now() - start).as_secs_f64() * 1e3;
            let start = ctx.now();
            l.append(N0, vec![t("s")], "after".into()).await;
            let healthy_ms = (ctx.now() - start).as_secs_f64() * 1e3;
            (stalled_ms, healthy_ms)
        });
        // Test model: 0.4 ms to the sequencer, wait out the 5 ms stall,
        // 0.6 ms storage. The stall delays, never drops.
        assert!((stalled_ms - 5.6).abs() < 1e-6, "stalled append {stalled_ms}ms");
        assert!((healthy_ms - 1.0).abs() < 1e-6, "post-stall append {healthy_ms}ms");
        assert_eq!(log.head_seqnum(), SeqNum(3));
    }
}

#[cfg(test)]
mod replication_tests {
    use hm_common::ids::TagKind;
    use hm_common::latency::LatencyModel;
    use hm_common::{NodeId, Tag};
    use hm_substrate::sim::Sim;

    use super::*;

    fn setup() -> (Sim, LogService<u64>) {
        let sim = Sim::new(0x9e9);
        let log = LogService::new(
            sim.ctx(),
            LatencyModel::uniform_test_model(),
            LogConfig::default(),
        );
        (sim, log)
    }

    fn t() -> Tag {
        Tag::named(TagKind::StepLog, "rep")
    }

    async fn timed_append(log: &LogService<u64>, ctx: &hm_substrate::Ctx, v: u64) -> f64 {
        let start = ctx.now();
        log.append(NodeId(0), vec![t()], v).await;
        (ctx.now() - start).as_secs_f64() * 1e3
    }

    #[test]
    fn full_quorum_matches_calibration() {
        let (mut sim, log) = setup();
        let ctx = sim.ctx();
        let l = log.clone();
        let ms = sim.block_on(async move { timed_append(&l, &ctx, 1).await });
        // Test model: constant 1.0 ms append end to end.
        assert!((ms - 1.0).abs() < 1e-6, "healthy append {ms}ms");
        assert_eq!(log.live_storage_replicas(), 3);
        assert_eq!(log.degraded_appends(), 0);
    }

    #[test]
    fn replica_failure_slows_appends_but_preserves_availability() {
        let (mut sim, log) = setup();
        let ctx = sim.ctx();
        let l = log.clone();
        let (healthy, down_one, down_two) = sim.block_on(async move {
            let healthy = timed_append(&l, &ctx, 1).await;
            l.fail_storage_replica_on(ShardId(0), 0);
            let down_one = timed_append(&l, &ctx, 2).await;
            l.fail_storage_replica_on(ShardId(0), 1);
            let down_two = timed_append(&l, &ctx, 3).await;
            (healthy, down_one, down_two)
        });
        assert!(down_one > healthy, "losing a replica must cost latency");
        assert!(down_two > down_one, "losing the quorum costs more");
        assert_eq!(log.live_storage_replicas(), 1);
        // Below quorum strength: appends counted as degraded but succeed.
        assert_eq!(log.degraded_appends(), 1);
        assert_eq!(log.head_seqnum(), SeqNum(4), "all three appends landed");
    }

    #[test]
    fn recovery_restores_full_speed() {
        let (mut sim, log) = setup();
        let ctx = sim.ctx();
        let l = log.clone();
        let ms = sim.block_on(async move {
            l.fail_storage_replica_on(ShardId(0), 2);
            timed_append(&l, &ctx, 1).await;
            l.recover_storage_replica_on(ShardId(0), 2);
            timed_append(&l, &ctx, 2).await
        });
        assert!((ms - 1.0).abs() < 1e-6, "recovered append {ms}ms");
        assert_eq!(log.live_storage_replicas(), 3);
    }

    #[test]
    fn total_outage_pays_reconfiguration() {
        let (mut sim, log) = setup();
        let ctx = sim.ctx();
        let l = log.clone();
        let ms = sim.block_on(async move {
            for r in 0..3 {
                l.fail_storage_replica_on(ShardId(0), r);
            }
            timed_append(&l, &ctx, 1).await
        });
        // Sequencer 0.4ms + 3 x 0.6ms storage = 2.2ms in the test model.
        assert!(ms > 2.0, "outage append {ms}ms");
        assert_eq!(log.degraded_appends(), 1);
    }

    /// Replica faults are shard-scoped; shard 0 is addressed explicitly.
    #[test]
    fn replica_faults_target_explicit_shard() {
        let (_sim, log) = setup();
        log.fail_storage_replica_on(ShardId(0), 1);
        assert_eq!(log.live_storage_replicas_on(ShardId(0)), 2);
        log.recover_storage_replica_on(ShardId(0), 1);
        assert_eq!(log.live_storage_replicas_on(ShardId(0)), 3);
    }
}

#[cfg(test)]
mod sharding_tests {
    use hm_common::ids::TagKind;
    use hm_common::latency::LatencyModel;
    use hm_common::{NodeId, Tag};
    use hm_substrate::{sim::Sim, Time};

    use crate::router::shard_for_tag;

    use super::*;

    const N0: NodeId = NodeId(0);
    const N1: NodeId = NodeId(1);

    fn t(name: &str) -> Tag {
        Tag::named(TagKind::StepLog, name)
    }

    fn sharded(sim: &Sim, shards: u8) -> LogService<String> {
        LogService::new(
            sim.ctx(),
            LatencyModel::uniform_test_model(),
            LogConfig {
                topology: Topology::sharded(shards),
                ..LogConfig::default()
            },
        )
    }

    /// First ObjectLog tag (by index) that the given topology routes to
    /// `want`.
    fn tag_on_shard(shards: u8, want: u8) -> Tag {
        (0..10_000u64)
            .map(|i| Tag::new(TagKind::ObjectLog, i))
            .find(|&tag| shard_for_tag(tag, shards) == ShardId(want))
            .expect("some tag must land on every shard")
    }

    /// Distinct tag routed to the same shard as `other`.
    fn second_tag_on_shard(shards: u8, want: u8, other: Tag) -> Tag {
        (0..10_000u64)
            .map(|i| Tag::new(TagKind::ObjectLog, i))
            .find(|&tag| tag != other && shard_for_tag(tag, shards) == ShardId(want))
            .expect("some second tag must land on the shard")
    }

    #[test]
    fn same_shard_multi_tag_record_charges_bytes_once() {
        let mut sim = Sim::new(21);
        let log = sharded(&sim, 4);
        let a = tag_on_shard(4, 2);
        let b = second_tag_on_shard(4, 2, a);
        let l = log;
        sim.block_on(async move {
            let sn = l.append(N0, vec![a, b], "payload".into()).await;
            // One record, two streams on one shard — bytes charged once.
            let once = ("payload".len() + RECORD_META_BYTES) as f64;
            assert_eq!(l.current_bytes(), once);
            assert_eq!(l.shard_current_bytes(ShardId(2)), once);
            assert_eq!(l.read_prev(N0, a, SeqNum::MAX).await.unwrap().seqnum, sn);
            assert_eq!(l.read_prev(N0, b, SeqNum::MAX).await.unwrap().seqnum, sn);
            // Freed exactly once, when the second stream lets go.
            l.trim(N0, a, sn).await;
            assert_eq!(l.current_bytes(), once);
            l.trim(N0, b, sn).await;
            assert_eq!(l.current_bytes(), 0.0);
            assert_eq!(l.live_records(), 0);
        });
    }

    #[test]
    fn cross_shard_multi_tag_record_stored_once_indexed_everywhere() {
        // The documented cross-shard policy: the record is stored (and its
        // bytes charged) once, on the first tag's home shard; foreign tags
        // get index-only stream entries that resolve through the router.
        let mut sim = Sim::new(22);
        let log = sharded(&sim, 4);
        let a = tag_on_shard(4, 0);
        let b = tag_on_shard(4, 3);
        let l = log;
        sim.block_on(async move {
            let sn = l.append(N0, vec![a, b], "xs".into()).await;
            let once = ("xs".len() + RECORD_META_BYTES) as f64;
            assert_eq!(l.locate(sn).unwrap().shard, ShardId(0), "home = first tag's shard");
            assert_eq!(l.shard_current_bytes(ShardId(0)), once);
            assert_eq!(l.shard_current_bytes(ShardId(3)), 0.0, "index-only entry");
            assert_eq!(l.current_bytes(), once);
            // Visible through both sub-streams.
            assert_eq!(l.read_prev(N0, a, SeqNum::MAX).await.unwrap().seqnum, sn);
            assert_eq!(l.read_prev(N0, b, SeqNum::MAX).await.unwrap().seqnum, sn);
            assert_eq!(l.peek_record(sn).unwrap().global_seqnum().shard, ShardId(0));
            // Trimming the foreign stream kills that membership only.
            l.trim(N0, b, sn).await;
            assert_eq!(l.live_records(), 1, "record survives via its home stream");
            assert_eq!(l.current_bytes(), once);
            // Trimming the home stream frees the bytes exactly once.
            l.trim(N0, a, sn).await;
            assert_eq!(l.live_records(), 0);
            assert_eq!(l.current_bytes(), 0.0);
            assert_eq!(l.shard_current_bytes(ShardId(0)), 0.0);
            assert_eq!(l.shard_current_bytes(ShardId(3)), 0.0);
        });
    }

    #[test]
    fn replica_failure_is_shard_scoped() {
        let mut sim = Sim::new(23);
        let log = sharded(&sim, 2);
        let on0 = tag_on_shard(2, 0);
        let on1 = tag_on_shard(2, 1);
        let ctx = sim.ctx();
        let l = log;
        sim.block_on(async move {
            // Knock shard 1 below quorum; shard 0 keeps a full quorum.
            l.fail_storage_replica_on(ShardId(1), 0);
            l.fail_storage_replica_on(ShardId(1), 1);
            assert_eq!(l.live_storage_replicas_on(ShardId(0)), 3);
            assert_eq!(l.live_storage_replicas_on(ShardId(1)), 1);
            let start = ctx.now();
            l.append(N0, vec![on0], "fast".into()).await;
            let healthy_ms = (ctx.now() - start).as_secs_f64() * 1e3;
            assert!(
                (healthy_ms - 1.0).abs() < 1e-6,
                "shard 0 must stay at full speed: {healthy_ms}ms"
            );
            let start = ctx.now();
            l.append(N0, vec![on1], "slow".into()).await;
            let degraded_ms = (ctx.now() - start).as_secs_f64() * 1e3;
            assert!(degraded_ms > healthy_ms, "degraded shard must be slower");
            // Degraded-append accounting stays on the failed shard.
            assert_eq!(l.shard_degraded_appends(ShardId(0)), 0);
            assert_eq!(l.shard_degraded_appends(ShardId(1)), 1);
            assert_eq!(l.degraded_appends(), 1);
        });
    }

    #[test]
    fn shards_share_one_seqnum_clock() {
        let mut sim = Sim::new(24);
        let log = sharded(&sim, 4);
        let a = tag_on_shard(4, 1);
        let b = tag_on_shard(4, 2);
        let l = log;
        sim.block_on(async move {
            let s1 = l.append(N0, vec![a], "1".into()).await;
            let s2 = l.append(N0, vec![b], "2".into()).await;
            let s3 = l.append(N0, vec![a], "3".into()).await;
            // Dense, globally comparable seqnums across shards.
            assert_eq!((s1, s2, s3), (SeqNum(1), SeqNum(2), SeqNum(3)));
            assert_eq!(l.locate(s1).unwrap().shard, ShardId(1));
            assert_eq!(l.locate(s2).unwrap().shard, ShardId(2));
            assert!(l.locate(s1).unwrap() < l.locate(s2).unwrap());
            assert_eq!(l.head_seqnum(), SeqNum(4));
        });
    }

    #[test]
    fn bounded_sequencer_queues_concurrent_appends() {
        // Uncapped, 8 concurrent appends all finish in one append latency
        // (1 ms in the test model). With a 1000/s sequencer each ordering
        // decision books 1 ms of lane time, so the last append waits out
        // the backlog.
        let run = |capacity: Option<f64>| {
            let mut sim = Sim::new(25);
            let log: LogService<String> = LogService::new(
                sim.ctx(),
                LatencyModel::uniform_test_model(),
                LogConfig {
                    sequencer_capacity: capacity,
                    ..LogConfig::default()
                },
            );
            let ctx = sim.ctx();
            let tag = Tag::named(TagKind::ObjectLog, "hot");
            for i in 0..8u32 {
                let l = log.clone();
                ctx.spawn(async move {
                    l.append(NodeId(i % 4), vec![tag], format!("v{i}")).await;
                });
            }
            sim.run();
            (sim.now().as_secs_f64() * 1e3, log.head_seqnum())
        };
        let (uncapped_ms, uncapped_head) = run(None);
        let (capped_ms, capped_head) = run(Some(1000.0));
        assert_eq!(uncapped_head, SeqNum(9));
        assert_eq!(capped_head, SeqNum(9), "capacity delays appends, never drops them");
        assert!(
            (uncapped_ms - 1.0).abs() < 1e-6,
            "uncapped appends overlap fully: {uncapped_ms}ms"
        );
        assert!(
            capped_ms >= 7.0,
            "a 1000/s lane must serialize 8 decisions: {capped_ms}ms"
        );
    }

    #[test]
    fn more_shards_drain_a_saturated_sequencer_faster() {
        let run = |shards: u8| {
            let mut sim = Sim::new(26);
            let log: LogService<String> = LogService::new(
                sim.ctx(),
                LatencyModel::uniform_test_model(),
                LogConfig {
                    topology: Topology::sharded(shards),
                    sequencer_capacity: Some(2000.0),
                    ..LogConfig::default()
                },
            );
            let ctx = sim.ctx();
            for w in 0..32u64 {
                let l = log.clone();
                ctx.spawn(async move {
                    let tag = Tag::new(TagKind::ObjectLog, w);
                    for i in 0..8u64 {
                        l.append(NodeId((w % 8) as u32), vec![tag], format!("{i}"))
                            .await;
                    }
                });
            }
            sim.run();
            assert_eq!(log.counters().log_appends, 32 * 8);
            sim.now().as_secs_f64()
        };
        let one = run(1);
        let four = run(4);
        assert!(
            four < one,
            "4 shards must finish the same load sooner: {four}s vs {one}s"
        );
    }

    // ---- group-commit batching ----

    fn setup_batched(batch: usize) -> (Sim, LogService<String>) {
        let sim = Sim::new(11);
        let log = LogService::new(
            sim.ctx(),
            LatencyModel::uniform_test_model(),
            LogConfig {
                batch_max_records: batch,
                ..LogConfig::default()
            },
        );
        (sim, log)
    }

    #[test]
    fn size_triggered_batch_assigns_contiguous_seqnums_in_arrival_order() {
        let (mut sim, log) = setup_batched(4);
        let ctx = sim.ctx();
        let mut handles = Vec::new();
        for w in 0..4u64 {
            let l = log.clone();
            let c = ctx.clone();
            handles.push(ctx.spawn(async move {
                // Staggered starts force a deterministic arrival order.
                c.sleep(Time::from_micros(w)).await;
                l.append(NodeId(w as u32), vec![Tag::new(TagKind::ObjectLog, w)], format!("{w}"))
                    .await
            }));
        }
        sim.run();
        let sns: Vec<SeqNum> = handles.into_iter().map(|h| h.try_take().unwrap()).collect();
        assert_eq!(sns, vec![SeqNum(1), SeqNum(2), SeqNum(3), SeqNum(4)]);
        let flush = log.flush_stats();
        assert_eq!(flush.flushes, 1, "4 appends at batch=4 are one flush");
        assert_eq!(flush.records, 4);
        assert_eq!(flush.size_trigger, 1);
        assert_eq!(flush.deadline_trigger, 0);
        assert_eq!(log.counters().log_appends, 4);
    }

    #[test]
    fn deadline_flushes_a_partial_batch() {
        let (mut sim, log) = setup_batched(64);
        let l = log.clone();
        let sn = sim.block_on(async move { l.append(N0, vec![t("solo")], "x".into()).await });
        assert_eq!(sn, SeqNum(1));
        let flush = log.flush_stats();
        assert_eq!(flush.flushes, 1);
        assert_eq!(flush.records, 1);
        assert_eq!(flush.deadline_trigger, 1, "a lone append must flush on the deadline");
        assert_eq!(log.pending_batch_len(ShardId(0)), 0);
    }

    #[test]
    fn batched_cond_append_still_resolves_exactly_one_winner() {
        let (mut sim, log) = setup_batched(8);
        let ctx = sim.ctx();
        let tag = t("step0");
        let mut handles = Vec::new();
        // Three peers race the same step position inside one batch: the
        // first to reach the sequencer wins, the rest adopt its record.
        for w in 0..3u32 {
            let l = log.clone();
            let c = ctx.clone();
            handles.push(ctx.spawn(async move {
                c.sleep(Time::from_micros(u64::from(w))).await;
                l.cond_append(NodeId(w), vec![tag], format!("peer{w}"), tag, 0)
                    .await
            }));
        }
        sim.run();
        let outcomes: Vec<CondAppendOutcome> =
            handles.into_iter().map(|h| h.try_take().unwrap()).collect();
        let winners: Vec<SeqNum> = outcomes
            .iter()
            .filter_map(|o| match o {
                CondAppendOutcome::Appended(sn) => Some(*sn),
                CondAppendOutcome::Conflict(_) => None,
            })
            .collect();
        assert_eq!(winners, vec![SeqNum(1)], "exactly one peer must win the step");
        for o in &outcomes[1..] {
            assert_eq!(*o, CondAppendOutcome::Conflict(SeqNum(1)));
        }
        assert_eq!(log.counters().cond_append_conflicts, 2);
        assert_eq!(log.counters().log_appends, 1, "losers' appends are undone");
    }

    #[test]
    fn replay_stream_force_flushes_the_open_batch_and_counts_once() {
        let (mut sim, log) = setup_batched(64);
        let ctx = sim.ctx();
        let tag = t("recover-me");
        for i in 0..3u64 {
            let l = log.clone();
            let c = ctx.clone();
            ctx.spawn(async move {
                c.sleep(Time::from_micros(i)).await;
                l.append(N0, vec![tag], format!("r{i}")).await;
            });
        }
        let l = log.clone();
        let stats = ctx.spawn(async move {
            // Arrive while all three appends are parked in the open batch:
            // they reach the sequencer at ~400µs (the to-sequencer share of
            // the 1ms test-model sample) and the deadline fires at ~600µs.
            l.ctx.sleep(Time::from_micros(500)).await;
            let (recs, stats) = l.replay_stream(N1, tag).await;
            assert_eq!(recs.len(), 3);
            stats
        });
        sim.run();
        let stats = stats.try_take().unwrap();
        assert_eq!(stats.replayed, 3, "forced-out records are counted once, not twice");
        assert_eq!(stats.pending_flushed, 3);
        assert_eq!(stats.trimmed, 0);
        let flush = log.flush_stats();
        assert_eq!(flush.forced_trigger, 1);
        assert_eq!(flush.deadline_trigger, 0, "the deadline task must stand down");
        assert_eq!(log.pending_batch_len(ShardId(0)), 0);
    }

    #[test]
    fn batch_of_one_reduces_to_the_unbatched_path_bit_identically() {
        // Sequential workload: every append flushes alone, so batching adds
        // no waiting partner and must not perturb a single RNG draw.
        let run = |batch: usize| {
            let (mut sim, log) = setup_batched(batch);
            let l = log.clone();
            sim.block_on(async move {
                for i in 0..16u32 {
                    l.append(N0, vec![t("seq")], format!("{i}")).await;
                }
                let _ = l
                    .cond_append(N0, vec![t("cond")], "c".into(), t("cond"), 0)
                    .await;
            });
            (sim.now(), log.counters(), log.head_seqnum())
        };
        let unbatched = run(1);
        let batched_sequential = run(64);
        // batch=1 is the literal pre-batching code; batch=64 over a purely
        // sequential workload flushes every record alone via the deadline,
        // so virtual time differs only by the deadline waits — but counters
        // and seqnums must match exactly.
        assert_eq!(unbatched.1, batched_sequential.1);
        assert_eq!(unbatched.2, batched_sequential.2);
    }

    #[test]
    fn batched_append_pays_one_admission_per_flush() {
        // A capacity-limited lane books 1/capacity per ordering decision.
        // With batching the decision covers the whole batch, so 64 writers
        // drain far sooner than 64 solo admissions would take.
        let run = |batch: usize| {
            let mut sim = Sim::new(7);
            let log: LogService<String> = LogService::new(
                sim.ctx(),
                LatencyModel::uniform_test_model(),
                LogConfig {
                    sequencer_capacity: Some(1000.0),
                    batch_max_records: batch,
                    ..LogConfig::default()
                },
            );
            let ctx = sim.ctx();
            for w in 0..64u64 {
                let l = log.clone();
                ctx.spawn(async move {
                    l.append(NodeId(w as u32), vec![Tag::new(TagKind::ObjectLog, w)], "p".into())
                        .await;
                });
            }
            sim.run();
            assert_eq!(log.counters().log_appends, 64);
            sim.now().as_secs_f64()
        };
        let solo = run(1);
        let grouped = run(16);
        assert!(
            grouped < solo / 2.0,
            "group commit must amortize admissions: batched {grouped}s vs solo {solo}s"
        );
    }

    #[test]
    fn crashed_appender_leaves_batch_peers_payloads_intact() {
        // An appender that dies while parked at the batch gate has already
        // handed its record to the sequencer: the batch still flushes it,
        // peers on the same gate complete normally, and — the refcount
        // property the zero-copy path must uphold — nobody observes a
        // freed or cleared payload, even though the crashed task dropped
        // its half of every shared handle (payload clone, outcome cell,
        // gate waiter) mid-flight.
        use hm_substrate::sync::TaskGroup;

        let mut sim = Sim::new(11);
        let log: LogService<hm_common::SharedBytes> = LogService::new(
            sim.ctx(),
            LatencyModel::uniform_test_model(),
            LogConfig {
                batch_max_records: 8, // > appender count: only the deadline flushes
                batch_max_delay: Time::from_millis(5),
                ..LogConfig::default()
            },
        );
        let ctx = sim.ctx();
        let tag = t("crash_batch");
        let node_a = TaskGroup::new();
        let doomed = hm_common::SharedBytes::copy_from(b"doomed-but-durable");

        // Appender on the failure domain `node_a`: enqueues, parks, dies.
        let l1 = log.clone();
        let g1 = node_a.clone();
        let d1 = doomed.clone();
        let crashed = ctx.spawn(async move { g1.run(l1.append(N0, [tag], d1)).await });

        // Peer appender sharing the batch (and its gate).
        let l2 = log.clone();
        let c2 = ctx.clone();
        let peer = ctx.spawn(async move {
            c2.sleep(Time::from_micros(1)).await;
            l2.append(N1, [tag], hm_common::SharedBytes::copy_from(b"peer"))
                .await
        });

        // Crash node_a once both records are enqueued but the batch has
        // not flushed (the deadline is comfortably far away).
        let c3 = ctx.clone();
        let lc = log.clone();
        ctx.spawn(async move {
            let shard = lc.shard_of(tag);
            while lc.pending_batch_len(shard) < 2 {
                c3.sleep(Time::from_micros(5)).await;
            }
            node_a.cancel();
        });

        sim.run();
        assert!(
            crashed.try_take().expect("resolved").is_err(),
            "appender must have been cancelled while parked"
        );
        let peer_sn = peer.try_take().expect("peer completed");
        let flush = log.flush_stats();
        assert_eq!(flush.flushes, 1);
        assert_eq!(flush.records, 2, "crashed record still flushed");
        assert_eq!(flush.deadline_trigger, 1);

        // Both payloads are live and intact in the log.
        let sns = log.peek_stream(tag);
        assert_eq!(sns.len(), 2);
        let first = log.peek_record(sns[0]).expect("crashed record installed");
        assert_eq!(first.payload.as_slice(), b"doomed-but-durable");
        assert!(
            first.payload.ptr_eq(&doomed),
            "zero-copy: the log shares the appender's buffer, no deep copy"
        );
        let second = log.peek_record(peer_sn).expect("peer record installed");
        assert_eq!(second.payload.as_slice(), b"peer");
        assert_eq!(log.live_records(), 2);
    }
}
