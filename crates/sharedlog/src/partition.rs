//! Placing a sharded log deployment onto execution partitions.
//!
//! The parallel substrate backend (`BackendKind::Parallel`) runs one
//! virtual-time executor per partition. A sharded log maps onto that
//! machine by giving every shard — its sequencer lane, storage group, and
//! stream indexes — a *home partition*; appends raised on the shard's own
//! partition stay an ordinary local call, while appends raised elsewhere
//! must travel as a timestamped cross-partition envelope and replay on the
//! home partition.
//!
//! This module supplies the two deployment-independent pieces of that
//! story:
//!
//! - [`ShardPlacement`]: the deterministic shard→partition map. It is the
//!   same pure function on every partition (the substrate's
//!   [`PartitionPolicy`] applied to the shard id), so — exactly like
//!   [`shard_for_tag`](crate::shard_for_tag) one level down — every node
//!   agrees where a shard lives without coordination.
//! - [`RemoteAppend`]: the wire form of a cross-partition append
//!   (origin node, tag set, opaque record bytes), encoded to the plain
//!   `Vec<u8>` payload that `ParCtx::send` carries.
//!
//! What deliberately does *not* split across partitions is the dense
//! seqnum clock: seqnums are compared across streams everywhere (see the
//! router module doc on the shared order clock), so one `LogService` — one
//! clock — lives wholly on one partition. Scaling across partitions means
//! *more services with disjoint tag spaces* (per tenant, per object
//! group), not one service spread thin; `hm_runtime::partition` builds
//! the tenant-level plan on top of this map.

use hm_common::{NodeId, Tag};
use hm_substrate::PartitionPolicy;

use crate::router::{shard_for_tag, ShardId, Topology};

/// Deterministic shard→partition placement for one log deployment.
#[derive(Clone, Copy, Debug)]
pub struct ShardPlacement {
    shards: u8,
    partitions: usize,
    policy: PartitionPolicy,
}

impl ShardPlacement {
    /// Places `topology`'s shards onto `partitions` partitions under
    /// `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is zero.
    #[must_use]
    pub fn new(topology: Topology, partitions: usize, policy: PartitionPolicy) -> ShardPlacement {
        assert!(partitions > 0, "placement needs at least one partition");
        ShardPlacement {
            shards: topology.shards,
            partitions,
            policy,
        }
    }

    /// Number of partitions in the placement.
    #[must_use]
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// Home partition of `shard`.
    #[must_use]
    pub fn partition_of(&self, shard: ShardId) -> usize {
        self.policy
            .assign(usize::from(shard.0), usize::from(self.shards), self.partitions)
    }

    /// Home partition of the shard that owns `tag`'s sub-stream.
    #[must_use]
    pub fn partition_of_tag(&self, tag: Tag) -> usize {
        self.partition_of(shard_for_tag(tag, self.shards))
    }

    /// True if `tag`'s shard lives on `partition` — an append raised
    /// there is a local call, not an envelope.
    #[must_use]
    pub fn is_local(&self, tag: Tag, partition: usize) -> bool {
        self.partition_of_tag(tag) == partition
    }

    /// The shards homed on `partition`, in shard order.
    #[must_use]
    pub fn shards_on(&self, partition: usize) -> Vec<ShardId> {
        (0..self.shards)
            .map(ShardId)
            .filter(|&s| self.partition_of(s) == partition)
            .collect()
    }
}

/// A cross-partition append request in wire form.
///
/// Layout (all little-endian): origin node `u32`, tag count `u16`, each
/// tag as `u64`, then the record bytes verbatim. The record stays opaque:
/// the home partition's service deserializes it with whatever payload
/// codec the deployment uses.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RemoteAppend {
    /// Node the append originated on.
    pub node: NodeId,
    /// Streams the record joins.
    pub tags: Vec<Tag>,
    /// Opaque serialized record.
    pub record: Vec<u8>,
}

impl RemoteAppend {
    /// Encodes to an envelope payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let tags = u16::try_from(self.tags.len()).expect("tag set fits u16");
        let mut out = Vec::with_capacity(4 + 2 + self.tags.len() * 8 + self.record.len());
        out.extend_from_slice(&self.node.0.to_le_bytes());
        out.extend_from_slice(&tags.to_le_bytes());
        for tag in &self.tags {
            out.extend_from_slice(&tag.0.to_le_bytes());
        }
        out.extend_from_slice(&self.record);
        out
    }

    /// Decodes an envelope payload; `None` if truncated or malformed.
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Option<RemoteAppend> {
        let node = NodeId(u32::from_le_bytes(bytes.get(..4)?.try_into().ok()?));
        let count = usize::from(u16::from_le_bytes(bytes.get(4..6)?.try_into().ok()?));
        let mut at = 6;
        let mut tags = Vec::with_capacity(count);
        for _ in 0..count {
            tags.push(Tag(u64::from_le_bytes(
                bytes.get(at..at + 8)?.try_into().ok()?,
            )));
            at += 8;
        }
        Some(RemoteAppend {
            node,
            tags,
            record: bytes.get(at..)?.to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use hm_common::ids::TagKind;

    use super::*;

    #[test]
    fn every_shard_gets_exactly_one_home() {
        for policy in [PartitionPolicy::RoundRobin, PartitionPolicy::Chunked] {
            for partitions in [1usize, 2, 3, 8] {
                let p = ShardPlacement::new(Topology::sharded(8), partitions, policy);
                let mut homes = vec![0u32; partitions];
                for s in 0..8 {
                    homes[p.partition_of(ShardId(s))] += 1;
                }
                assert_eq!(homes.iter().sum::<u32>(), 8, "{policy:?}/{partitions}");
                // Both policies balance an even split perfectly.
                if 8 % partitions == 0 {
                    assert!(
                        homes.iter().all(|&n| n as usize == 8 / partitions),
                        "{policy:?}/{partitions}: {homes:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn shards_on_inverts_partition_of() {
        let p = ShardPlacement::new(Topology::sharded(8), 3, PartitionPolicy::RoundRobin);
        let mut seen = Vec::new();
        for part in 0..3 {
            for shard in p.shards_on(part) {
                assert_eq!(p.partition_of(shard), part);
                seen.push(shard.0);
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn tag_locality_matches_shard_home() {
        let p = ShardPlacement::new(Topology::sharded(4), 2, PartitionPolicy::RoundRobin);
        for id in 0..64 {
            let tag = Tag::new(TagKind::ObjectLog, id);
            let home = p.partition_of_tag(tag);
            assert!(p.is_local(tag, home));
            assert!(!p.is_local(tag, 1 - home));
            assert_eq!(home, p.partition_of(shard_for_tag(tag, 4)));
        }
    }

    #[test]
    fn remote_append_round_trips() {
        let msg = RemoteAppend {
            node: NodeId(7),
            tags: vec![
                Tag::new(TagKind::StepLog, 1),
                Tag::new(TagKind::ObjectLog, 0xdead_beef),
            ],
            record: b"opaque payload".to_vec(),
        };
        assert_eq!(RemoteAppend::decode(&msg.encode()), Some(msg.clone()));
        // Truncations never panic, they just fail to decode.
        let wire = msg.encode();
        for cut in 0..6 {
            assert_eq!(RemoteAppend::decode(&wire[..cut]), None, "cut {cut}");
        }
        assert_eq!(RemoteAppend::decode(&wire[..8]), None, "mid-tag cut");
    }

    #[test]
    fn empty_record_and_no_tags_round_trip() {
        let msg = RemoteAppend {
            node: NodeId(0),
            tags: Vec::new(),
            record: Vec::new(),
        };
        assert_eq!(RemoteAppend::decode(&msg.encode()), Some(msg));
    }
}
