//! One log shard: a sequencer lane, a replicated storage group, the
//! stream indexes of the tags routed to it, and per-node record caches.
//!
//! # Hot-path data structures
//!
//! The simulated log sits under every protocol operation, so its structures
//! are chosen for O(1) work per op and zero avoidable allocation:
//!
//! - **Record slab**: each shard stores its records in a dense
//!   `Vec<Option<RecordSlot>>` indexed by a per-shard slot; the router's
//!   seqnum index maps the globally dense seqnums to `(shard, slot)` —
//!   fetch, install, and reclaim are all O(1), no hashing.
//! - **Membership offsets**: at install time each record learns its absolute
//!   offset in every sub-stream it joins. `read_prev`/`read_next`/`trim`
//!   whose bound names a live record resolve positions O(1) from those
//!   stored offsets instead of re-deriving them by binary search (the
//!   search remains only as a fallback for bounds that are not records of
//!   the stream).
//! - **Live-stream refcounts**: each record counts its untrimmed stream
//!   memberships. `trim` decrements the count for each drained entry and
//!   reclaims the record exactly when it hits zero — O(removed) total,
//!   making byte accounting structurally exact (charged once at install
//!   on the owning shard, freed once at last membership death; no
//!   double-free or leak is possible even for records listed under
//!   trimmed-then-revived streams or under streams of *other* shards).
//! - **Bounded node caches**: each function node's record cache is an
//!   [`LruSet`] bounded by the configured capacity, per shard (a real
//!   node caches per ordering lane it talks to), with hit/miss counts
//!   surfaced in [`OpCounters`].
//!
//! The tag index (`streams`) uses the deterministic `FxHashMap`; nothing
//! iterates it in a behavior-affecting order.

use std::rc::Rc;
use std::time::Duration;

use hm_common::collections::{FxHashMap, FxHashSet, LruSet, TagSet};
use hm_common::metrics::{OpCounters, TimeWeightedGauge};
use hm_common::{NodeId, SeqNum, Tag};

/// Per-record metadata bytes charged to log storage (`S_meta`, §4.6:
/// "a few dozen bytes" covering seqnum, tags, step, op kind).
pub const RECORD_META_BYTES: usize = 32;

/// One record in the shared log.
#[derive(Clone, Debug)]
pub struct LogRecord<P> {
    /// Globally unique, monotonically increasing position in the shared
    /// order (drawn from the clock all shards sequence against).
    pub seqnum: SeqNum,
    /// Shard whose storage group holds the record.
    pub shard: crate::router::ShardId,
    /// The sub-streams this record belongs to.
    pub tags: TagSet,
    /// Protocol-defined payload.
    pub payload: P,
}

impl<P> LogRecord<P> {
    /// The record's composite position: owning shard + shared-clock seqnum.
    #[must_use]
    pub fn global_seqnum(&self) -> crate::router::GlobalSeqNum {
        crate::router::GlobalSeqNum {
            shard: self.shard,
            seq: self.seqnum,
        }
    }
}

/// Per-tag sub-stream: seqnums ascending, plus how many records have been
/// trimmed from the front. Offsets into the *untrimmed* stream stay stable,
/// which `cond_append` relies on.
#[derive(Default)]
pub(crate) struct Stream {
    pub(crate) seqnums: Vec<SeqNum>,
    pub(crate) trimmed: usize,
}

impl Stream {
    pub(crate) fn len_total(&self) -> usize {
        self.trimmed + self.seqnums.len()
    }

    /// Seqnum at absolute offset, if still live.
    pub(crate) fn at(&self, offset: usize) -> Option<SeqNum> {
        offset
            .checked_sub(self.trimmed)
            .and_then(|i| self.seqnums.get(i).copied())
    }
}

/// Number of stream memberships stored inline per record.
const MEMBER_INLINE: usize = 4;

/// A record's stream memberships: `(tag, absolute offset in that stream)`
/// pairs, assigned once at install. Inline up to [`MEMBER_INLINE`] entries
/// (records almost always carry one to three tags), heap beyond.
pub(crate) struct Memberships {
    len: u32,
    inline: [(Tag, u64); MEMBER_INLINE],
    spill: Vec<(Tag, u64)>,
}

impl Memberships {
    /// A memberships set expecting `tags` entries: for the spilling case
    /// (more than [`MEMBER_INLINE`] tags) the spill vector is sized once
    /// up front instead of growing through doublings.
    pub(crate) fn with_capacity(tags: usize) -> Memberships {
        Memberships {
            len: 0,
            inline: [(Tag(0), 0); MEMBER_INLINE],
            spill: if tags > MEMBER_INLINE {
                Vec::with_capacity(tags)
            } else {
                Vec::new()
            },
        }
    }

    pub(crate) fn push(&mut self, tag: Tag, offset: u64) {
        let i = self.len as usize;
        if i < MEMBER_INLINE {
            self.inline[i] = (tag, offset);
        } else {
            if i == MEMBER_INLINE {
                self.spill.extend_from_slice(&self.inline);
            }
            self.spill.push((tag, offset));
        }
        self.len += 1;
    }

    pub(crate) fn as_slice(&self) -> &[(Tag, u64)] {
        if self.len as usize <= MEMBER_INLINE {
            &self.inline[..self.len as usize]
        } else {
            &self.spill
        }
    }

    /// The record's *last* offset under `tag` (a record appended with a
    /// duplicated tag occupies several consecutive offsets; bounds must
    /// resolve past all of them).
    pub(crate) fn last_offset_of(&self, tag: Tag) -> Option<u64> {
        self.as_slice()
            .iter()
            .rev()
            .find(|&&(t, _)| t == tag)
            .map(|&(_, off)| off)
    }
}

/// Slab entry for one live record.
pub(crate) struct RecordSlot<P> {
    pub(crate) record: Rc<LogRecord<P>>,
    /// Where this record sits in each of its sub-streams.
    pub(crate) memberships: Memberships,
    /// Untrimmed stream memberships remaining (duplicate tags counted
    /// once per occurrence). The record is reclaimed when this hits zero.
    pub(crate) live_streams: u32,
    /// Bytes charged to the owning shard's storage gauge at install,
    /// returned at reclaim.
    pub(crate) bytes: usize,
}

/// Group-commit accounting for one shard's sequencer-side batcher.
///
/// Kept as plain fields (like `degraded_appends`) rather than inside
/// [`OpCounters`]: the op counters feed determinism fingerprints and the
/// golden metrics snapshot, which must stay bit-identical for unbatched
/// runs — and a batched run's flush counts are a new dimension, not a new
/// kind of log op.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlushStats {
    /// Batches flushed (each paid one sequencer admission and one
    /// coalesced storage round-trip).
    pub flushes: u64,
    /// Records carried by those flushes. `records / flushes` is the mean
    /// achieved batch size (the `log.batch_size` metrics mirror).
    pub records: u64,
    /// Flushes triggered by the batch filling to
    /// `LogConfig::batch_max_records`.
    pub size_trigger: u64,
    /// Flushes triggered by the `LogConfig::batch_max_delay` deadline.
    pub deadline_trigger: u64,
    /// Flushes forced by a `replay_stream` recovery read (§5: a successor
    /// must observe every record the sequencer has accepted).
    pub forced_trigger: u64,
}

impl FlushStats {
    /// Mean records per flush, 0 when nothing has flushed.
    #[must_use]
    pub fn mean_batch_size(&self) -> f64 {
        if self.flushes == 0 {
            0.0
        } else {
            self.records as f64 / self.flushes as f64
        }
    }

    pub(crate) fn merged(&self, other: &FlushStats) -> FlushStats {
        FlushStats {
            flushes: self.flushes + other.flushes,
            records: self.records + other.records,
            size_trigger: self.size_trigger + other.size_trigger,
            deadline_trigger: self.deadline_trigger + other.deadline_trigger,
            forced_trigger: self.forced_trigger + other.forced_trigger,
        }
    }
}

/// Mutable state of one shard: everything the pre-sharding `LogInner`
/// held, minus the clock (shared, in the router).
pub(crate) struct ShardState<P> {
    /// Storage replicas currently down (by index `0..replicas_per_shard`).
    pub(crate) failed_replicas: FxHashSet<u32>,
    /// Appends persisted while fewer than `quorum` replicas were live —
    /// the reconfigured-view path (availability preserved, like Boki's
    /// view change, but worth counting). Per-shard: a degraded storage
    /// group on one shard never taints another's accounting.
    pub(crate) degraded_appends: u64,
    /// This shard's live records, indexed by per-shard slot.
    pub(crate) slots: Vec<Option<RecordSlot<P>>>,
    /// Live record count (`slots` keeps tombstones for reclaimed entries).
    pub(crate) live: usize,
    /// Sub-streams of the tags routed to this shard.
    pub(crate) streams: FxHashMap<Tag, Stream>,
    /// Per-node record caches, indexed by `NodeId` (grown on demand).
    pub(crate) node_cache: Vec<LruSet<SeqNum>>,
    pub(crate) node_cache_capacity: usize,
    pub(crate) bytes: TimeWeightedGauge,
    pub(crate) counters: OpCounters,
    /// Virtual time until which this shard's sequencer lane is booked
    /// (the bounded-capacity admission model; unused when capacity is
    /// uncapped).
    pub(crate) sequencer_free_at: Duration,
    /// Group-commit accounting (all zero while batching is off).
    pub(crate) flush: FlushStats,
}

impl<P> ShardState<P> {
    pub(crate) fn new(now: Duration, node_cache_capacity: usize) -> ShardState<P> {
        ShardState {
            failed_replicas: FxHashSet::default(),
            degraded_appends: 0,
            slots: Vec::new(),
            live: 0,
            streams: FxHashMap::default(),
            node_cache: Vec::new(),
            node_cache_capacity,
            bytes: TimeWeightedGauge::new(now),
            counters: OpCounters::default(),
            sequencer_free_at: Duration::ZERO,
            flush: FlushStats::default(),
        }
    }

    pub(crate) fn slot(&self, idx: u32) -> Option<&RecordSlot<P>> {
        self.slots.get(idx as usize).and_then(Option::as_ref)
    }

    pub(crate) fn cache_for(&mut self, node: NodeId) -> &mut LruSet<SeqNum> {
        let idx = node.0 as usize;
        while self.node_cache.len() <= idx {
            self.node_cache.push(LruSet::new(self.node_cache_capacity));
        }
        &mut self.node_cache[idx]
    }
}
