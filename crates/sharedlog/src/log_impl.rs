//! The shared-log implementation.
//!
//! # Hot-path data structures
//!
//! The simulated log sits under every protocol operation, so its structures
//! are chosen for O(1) work per op and zero avoidable allocation:
//!
//! - **Record slab**: seqnums are dense (the sequencer assigns 1, 2, 3, …),
//!   so records live in a `Vec<Option<RecordSlot>>` indexed by `seqnum - 1`
//!   — fetch, install, and reclaim are all O(1), no hashing.
//! - **Membership offsets**: at install time each record learns its absolute
//!   offset in every sub-stream it joins. `read_prev`/`read_next`/`trim`
//!   whose bound names a live record resolve positions O(1) from those
//!   stored offsets instead of re-deriving them by binary search (the
//!   search remains only as a fallback for bounds that are not records of
//!   the stream).
//! - **Live-stream refcounts**: each record counts its untrimmed stream
//!   memberships. `trim` decrements the count for each drained entry and
//!   reclaims the record exactly when it hits zero — O(removed) total,
//!   replacing the per-record, per-tag `binary_search` scan, and making
//!   byte accounting structurally exact (charged once at install, freed
//!   once at last membership death; no double-free or leak is possible
//!   even for records listed under trimmed-then-revived streams).
//! - **Bounded node caches**: each function node's record cache is an
//!   [`LruSet`] bounded by [`LogConfig::node_cache_capacity`], with
//!   hit/miss counts surfaced in [`OpCounters`].
//!
//! The tag index (`streams`) uses the deterministic `FxHashMap`; nothing
//! iterates it in a behavior-affecting order.

use std::cell::RefCell;
use std::rc::Rc;

use hm_common::collections::{FxHashMap, FxHashSet, LruSet, TagSet};
use hm_common::latency::LatencyModel;
use hm_common::metrics::{OpCounters, TimeWeightedGauge};
use hm_common::trace::{Lane, SpanId, TraceId, Tracer};
use hm_common::{NodeId, SeqNum, Tag};
use hm_sim::SimCtx;

use crate::payload::Payload;

/// Captured trace context for one in-flight log operation: the tracer plus
/// the `(trace, span)` this operation's storage-lane span belongs to.
type TraceScope = Option<(Rc<Tracer>, TraceId, SpanId)>;

/// Per-record metadata bytes charged to log storage (`S_meta`, §4.6:
/// "a few dozen bytes" covering seqnum, tags, step, op kind).
pub const RECORD_META_BYTES: usize = 32;

/// One record in the shared log.
#[derive(Clone, Debug)]
pub struct LogRecord<P> {
    /// Globally unique, monotonically increasing position in the main log.
    pub seqnum: SeqNum,
    /// The sub-streams this record belongs to.
    pub tags: TagSet,
    /// Protocol-defined payload.
    pub payload: P,
}

/// Result of a successful [`SharedLog::cond_append`], or the conflict info
/// the paper's `logCondAppend` returns (§5.1): the seqnum of the record that
/// already occupies the expected position, so the losing instance can adopt
/// the winner's state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CondAppendOutcome {
    /// This append won: the record landed at the expected offset.
    Appended(SeqNum),
    /// A peer's record already occupies the expected offset; the append was
    /// undone. Carries the winner's seqnum.
    Conflict(SeqNum),
}

/// Tuning knobs for the simulated logging layer.
#[derive(Clone, Copy, Debug)]
pub struct LogConfig {
    /// Fraction of append latency spent *before* the sequencer assigns the
    /// seqnum (the request's trip to the sequencer). Concurrent appends
    /// therefore race for order, like on the real network.
    pub sequencer_fraction: f64,
    /// Number of function nodes with record caches.
    pub nodes: u32,
    /// Log storage replicas (the paper's setup uses three storage nodes).
    pub replicas: u32,
    /// Replicas that must acknowledge an append before it is durable.
    pub quorum: u32,
    /// Capacity of each function node's record cache, in records. The
    /// default is large enough that steady-state benchmark workloads never
    /// evict (memory grows with occupancy, not with this bound); shrink it
    /// to model cache pressure.
    pub node_cache_capacity: usize,
}

impl Default for LogConfig {
    fn default() -> LogConfig {
        LogConfig {
            sequencer_fraction: 0.4,
            nodes: 8,
            replicas: 3,
            quorum: 2,
            node_cache_capacity: 1 << 20,
        }
    }
}

/// Per-tag sub-stream: seqnums ascending, plus how many records have been
/// trimmed from the front. Offsets into the *untrimmed* stream stay stable,
/// which `cond_append` relies on.
#[derive(Default)]
struct Stream {
    seqnums: Vec<SeqNum>,
    trimmed: usize,
}

impl Stream {
    fn len_total(&self) -> usize {
        self.trimmed + self.seqnums.len()
    }

    /// Seqnum at absolute offset, if still live.
    fn at(&self, offset: usize) -> Option<SeqNum> {
        offset
            .checked_sub(self.trimmed)
            .and_then(|i| self.seqnums.get(i).copied())
    }
}

/// Number of stream memberships stored inline per record.
const MEMBER_INLINE: usize = 4;

/// A record's stream memberships: `(tag, absolute offset in that stream)`
/// pairs, assigned once at install. Inline up to [`MEMBER_INLINE`] entries
/// (records almost always carry one to three tags), heap beyond.
struct Memberships {
    len: u32,
    inline: [(Tag, u64); MEMBER_INLINE],
    spill: Vec<(Tag, u64)>,
}

impl Memberships {
    fn new() -> Memberships {
        Memberships {
            len: 0,
            inline: [(Tag(0), 0); MEMBER_INLINE],
            spill: Vec::new(),
        }
    }

    fn push(&mut self, tag: Tag, offset: u64) {
        let i = self.len as usize;
        if i < MEMBER_INLINE {
            self.inline[i] = (tag, offset);
        } else {
            if i == MEMBER_INLINE {
                self.spill.extend_from_slice(&self.inline);
            }
            self.spill.push((tag, offset));
        }
        self.len += 1;
    }

    fn as_slice(&self) -> &[(Tag, u64)] {
        if self.len as usize <= MEMBER_INLINE {
            &self.inline[..self.len as usize]
        } else {
            &self.spill
        }
    }

    /// The record's *last* offset under `tag` (a record appended with a
    /// duplicated tag occupies several consecutive offsets; bounds must
    /// resolve past all of them).
    fn last_offset_of(&self, tag: Tag) -> Option<u64> {
        self.as_slice()
            .iter()
            .rev()
            .find(|&&(t, _)| t == tag)
            .map(|&(_, off)| off)
    }
}

/// Slab entry for one live record.
struct RecordSlot<P> {
    record: Rc<LogRecord<P>>,
    /// Where this record sits in each of its sub-streams.
    memberships: Memberships,
    /// Untrimmed stream memberships remaining (duplicate tags counted
    /// once per occurrence). The record is reclaimed when this hits zero.
    live_streams: u32,
    /// Bytes charged to the storage gauge at install, returned at reclaim.
    bytes: usize,
}

struct LogInner<P> {
    /// Storage replicas currently down (by index `0..config.replicas`).
    failed_replicas: FxHashSet<u32>,
    /// Appends persisted while fewer than `quorum` replicas were live —
    /// the reconfigured-view path (availability preserved, like Boki's
    /// view change, but worth counting).
    degraded_appends: u64,
    /// All live records, indexed by `seqnum - 1` (seqnums are dense).
    slots: Vec<Option<RecordSlot<P>>>,
    /// Live record count (`slots` keeps tombstones for reclaimed entries).
    live: usize,
    streams: FxHashMap<Tag, Stream>,
    next_seqnum: SeqNum,
    /// Per-node record caches, indexed by `NodeId` (grown on demand).
    node_cache: Vec<LruSet<SeqNum>>,
    node_cache_capacity: usize,
    bytes: TimeWeightedGauge,
    counters: OpCounters,
    /// Optional tracing sink, shared by all handle clones.
    tracer: Option<Rc<Tracer>>,
}

impl<P> LogInner<P> {
    fn slot(&self, sn: SeqNum) -> Option<&RecordSlot<P>> {
        let idx = sn.0.checked_sub(1)? as usize;
        self.slots.get(idx).and_then(Option::as_ref)
    }

    fn cache_for(&mut self, node: NodeId) -> &mut LruSet<SeqNum> {
        let idx = node.0 as usize;
        while self.node_cache.len() <= idx {
            self.node_cache.push(LruSet::new(self.node_cache_capacity));
        }
        &mut self.node_cache[idx]
    }

    /// The record's stored offset under `tag`, when the bound seqnum names
    /// a live record that is a member of that stream.
    fn offset_in_stream(&self, sn: SeqNum, tag: Tag) -> Option<u64> {
        self.slot(sn)
            .and_then(|slot| slot.memberships.last_offset_of(tag))
    }
}

/// Handle to the simulated shared log. Cheap to clone; clones share state.
pub struct SharedLog<P> {
    ctx: SimCtx,
    model: LatencyModel,
    config: LogConfig,
    inner: Rc<RefCell<LogInner<P>>>,
}

impl<P> Clone for SharedLog<P> {
    fn clone(&self) -> Self {
        SharedLog {
            ctx: self.ctx.clone(),
            model: self.model,
            config: self.config,
            inner: self.inner.clone(),
        }
    }
}

impl<P: Payload> SharedLog<P> {
    /// Creates an empty log. Seqnums start at 1 so that [`SeqNum::ZERO`]
    /// can mean "before everything".
    #[must_use]
    pub fn new(ctx: SimCtx, model: LatencyModel, config: LogConfig) -> SharedLog<P> {
        let now = ctx.now();
        SharedLog {
            ctx,
            model,
            config,
            inner: Rc::new(RefCell::new(LogInner {
                failed_replicas: FxHashSet::default(),
                degraded_appends: 0,
                slots: Vec::new(),
                live: 0,
                streams: FxHashMap::default(),
                next_seqnum: SeqNum(1),
                node_cache: Vec::new(),
                node_cache_capacity: config.node_cache_capacity,
                bytes: TimeWeightedGauge::new(now),
                counters: OpCounters::default(),
                tracer: None,
            })),
        }
    }

    /// Installs a tracer; every log round-trip then emits a span on the
    /// storage lane (with sequencing decisions on the sequencer lane and
    /// cache hits/misses on the reading node's lane), attributed to the
    /// caller's current trace context. Shared by all handle clones.
    pub fn set_tracer(&self, tracer: Rc<Tracer>) {
        self.inner.borrow_mut().tracer = Some(tracer);
    }

    /// Captures the caller's trace context and opens a storage-lane span.
    /// Must run at operation entry, before the first `await` (see
    /// `hm_common::trace` module docs for the hand-off contract).
    fn trace_begin(&self, name: &'static str) -> TraceScope {
        let tracer = self.inner.borrow().tracer.clone()?;
        let (trace, parent) = tracer.context();
        let span = tracer.span_begin(Lane::Storage, self.ctx.now(), trace, parent, name, String::new());
        Some((tracer, trace, span))
    }

    fn trace_end(&self, scope: &TraceScope) {
        if let Some((tracer, trace, span)) = scope {
            tracer.span_end(Lane::Storage, self.ctx.now(), *trace, *span);
        }
    }

    /// Marks a sequencer-lane decision (order assignment or conflict)
    /// under this operation's span. `detail` is a closure so the string is
    /// never built when tracing is disabled.
    fn trace_sequencer(&self, scope: &TraceScope, name: &'static str, detail: impl FnOnce() -> String) {
        if let Some((tracer, trace, span)) = scope {
            tracer.instant(Lane::Sequencer, self.ctx.now(), *trace, *span, name, detail());
        }
    }

    /// Appends a record tagged with `tags`; returns its seqnum.
    ///
    /// Latency is one sample of the calibrated log-append distribution,
    /// split around the sequencer's order assignment; the storage phase
    /// completes when a quorum of replicas has acknowledged (the slowest
    /// acknowledging replica sets the pace, so losing a replica visibly
    /// fattens the tail).
    pub async fn append(&self, node: NodeId, tags: Vec<Tag>, payload: P) -> SeqNum {
        let scope = self.trace_begin("log_append");
        let total = self.ctx.with_rng(|rng| self.model.log_append.sample(rng));
        let to_sequencer = total.mul_f64(self.config.sequencer_fraction);
        self.ctx.sleep(to_sequencer).await;
        let seqnum = self.install(node, tags, payload);
        self.trace_sequencer(&scope, "sequenced", || format!("sn{}", seqnum.0));
        let storage = self.quorum_storage_latency(total.saturating_sub(to_sequencer));
        self.ctx.sleep(storage).await;
        self.trace_end(&scope);
        seqnum
    }

    /// The storage-phase latency. The calibrated log-append distribution
    /// already describes a healthy quorum-of-`replicas` write (DESIGN.md
    /// §4), so the full-strength path costs exactly the base sample. With
    /// replicas down, the quorum must include proportionally worse
    /// replicas: each missing replica fattens the write by ~25 % plus an
    /// extra tail jitter. Below quorum strength, the layer reconfigures
    /// (Boki's view change) and the append is counted as degraded.
    fn quorum_storage_latency(&self, base: std::time::Duration) -> std::time::Duration {
        let mut inner = self.inner.borrow_mut();
        let live = self.config.replicas - inner.failed_replicas.len() as u32;
        if live >= self.config.replicas {
            return base;
        }
        if live < self.config.quorum {
            inner.degraded_appends += 1;
        }
        drop(inner);
        if live == 0 {
            // Total storage outage: a reconfiguration round on top.
            return base.saturating_mul(3);
        }
        let missing = (self.config.replicas - live) as f64;
        let jitter = self
            .ctx
            .with_rng(|rng| hm_common::latency::sample_standard_normal(rng).abs());
        base.mul_f64(1.0 + 0.25 * missing + 0.15 * jitter)
    }

    /// Marks a storage replica as failed (index `0..replicas`).
    pub fn fail_storage_replica(&self, replica: u32) {
        self.inner
            .borrow_mut()
            .failed_replicas
            .insert(replica % self.config.replicas);
    }

    /// Brings a failed storage replica back.
    pub fn recover_storage_replica(&self, replica: u32) {
        self.inner
            .borrow_mut()
            .failed_replicas
            .remove(&(replica % self.config.replicas));
    }

    /// Number of live storage replicas.
    #[must_use]
    pub fn live_storage_replicas(&self) -> u32 {
        self.config.replicas - self.inner.borrow().failed_replicas.len() as u32
    }

    /// Appends persisted below the configured quorum (degraded views).
    #[must_use]
    pub fn degraded_appends(&self) -> u64 {
        self.inner.borrow().degraded_appends
    }

    /// Conditional append (§5.1, Figure 3's `logCondAppend`).
    ///
    /// Appends like [`SharedLog::append`], then checks that the new record's
    /// offset within the `cond_tag` sub-stream equals `cond_pos`. On
    /// mismatch the append is undone and the seqnum of the record actually
    /// at `cond_pos` is returned, so exactly one peer instance wins each
    /// step and losers can adopt the winner's record.
    pub async fn cond_append(
        &self,
        node: NodeId,
        tags: Vec<Tag>,
        payload: P,
        cond_tag: Tag,
        cond_pos: usize,
    ) -> CondAppendOutcome {
        debug_assert!(
            tags.contains(&cond_tag),
            "cond_tag must be among the record's tags"
        );
        let scope = self.trace_begin("log_cond_append");
        let total = self.ctx.with_rng(|rng| self.model.log_append.sample(rng));
        let to_sequencer = total.mul_f64(self.config.sequencer_fraction);
        self.ctx.sleep(to_sequencer).await;
        // Sequencing and the condition check are atomic at the logging
        // layer: that is the point of logCondAppend (it resolves conflicts
        // "in place", unlike Boki's separate append-then-read). The
        // stream's next offset is O(1): `len_total` is a stored count.
        let outcome = {
            let mut inner = self.inner.borrow_mut();
            let offset = inner.streams.get(&cond_tag).map_or(0, Stream::len_total);
            if offset == cond_pos {
                drop(inner);
                CondAppendOutcome::Appended(self.install(node, tags, payload))
            } else {
                inner.counters.cond_append_conflicts += 1;
                let winner = inner
                    .streams
                    .get(&cond_tag)
                    .and_then(|s| s.at(cond_pos))
                    .unwrap_or(SeqNum::ZERO);
                CondAppendOutcome::Conflict(winner)
            }
        };
        match outcome {
            CondAppendOutcome::Appended(sn) => {
                self.trace_sequencer(&scope, "sequenced", || format!("sn{}", sn.0));
            }
            CondAppendOutcome::Conflict(winner) => {
                self.trace_sequencer(&scope, "cond_conflict", || format!("winner sn{}", winner.0));
            }
        }
        let storage = self.quorum_storage_latency(total.saturating_sub(to_sequencer));
        self.ctx.sleep(storage).await;
        self.trace_end(&scope);
        outcome
    }

    fn install(&self, node: NodeId, tags: Vec<Tag>, payload: P) -> SeqNum {
        let now = self.ctx.now();
        let mut inner = self.inner.borrow_mut();
        let inner = &mut *inner;
        let seqnum = inner.next_seqnum;
        inner.next_seqnum = seqnum.next();
        let bytes = payload.size_bytes() + RECORD_META_BYTES;
        let mut memberships = Memberships::new();
        for &tag in &tags {
            let stream = inner.streams.entry(tag).or_default();
            memberships.push(tag, stream.len_total() as u64);
            stream.seqnums.push(seqnum);
        }
        let live_streams = tags.len() as u32;
        let record = Rc::new(LogRecord {
            seqnum,
            tags: TagSet::from_vec(tags),
            payload,
        });
        debug_assert_eq!(
            inner.slots.len() as u64 + 1,
            seqnum.0,
            "seqnums must stay dense for the record slab"
        );
        inner.slots.push(Some(RecordSlot {
            record,
            memberships,
            live_streams,
            bytes,
        }));
        inner.live += 1;
        // The appending node caches its own record.
        inner.cache_for(node).insert(seqnum);
        inner.bytes.add(now, bytes as f64);
        inner.counters.log_appends += 1;
        seqnum
    }

    /// Reads the latest record in `tag`'s sub-stream with seqnum ≤
    /// `max_seqnum` (Figure 3's `logReadPrev`).
    pub async fn read_prev(
        &self,
        node: NodeId,
        tag: Tag,
        max_seqnum: SeqNum,
    ) -> Option<Rc<LogRecord<P>>> {
        let scope = self.trace_begin("log_read_prev");
        let found = {
            let inner = self.inner.borrow();
            inner.streams.get(&tag).and_then(|s| {
                if max_seqnum == SeqNum::MAX {
                    // Newest record: the common "read the tail" case.
                    s.seqnums.last().copied()
                } else if let Some(off) = inner.offset_in_stream(max_seqnum, tag) {
                    // The bound names a live member of this stream: its
                    // stored offset answers directly (None once trimmed —
                    // everything at or below it is gone from the stream).
                    s.at(off as usize)
                } else {
                    let idx = s.seqnums.partition_point(|&sn| sn <= max_seqnum);
                    idx.checked_sub(1).and_then(|i| s.seqnums.get(i).copied())
                }
            })
        };
        self.pay_read(node, found, &scope).await;
        self.trace_end(&scope);
        found.map(|sn| self.fetch(sn))
    }

    /// Reads the earliest record in `tag`'s sub-stream with seqnum ≥
    /// `min_seqnum` (Figure 3's `logReadNext`).
    pub async fn read_next(
        &self,
        node: NodeId,
        tag: Tag,
        min_seqnum: SeqNum,
    ) -> Option<Rc<LogRecord<P>>> {
        let scope = self.trace_begin("log_read_next");
        let found = {
            let inner = self.inner.borrow();
            inner.streams.get(&tag).and_then(|s| {
                match s.seqnums.first().copied() {
                    Some(first) if min_seqnum <= first => Some(first),
                    Some(_) => {
                        if let Some(off) = inner.offset_in_stream(min_seqnum, tag) {
                            // Live member at or past the trim front: the
                            // bound itself is the answer. Trimmed member:
                            // every live entry is newer, so the front is.
                            s.at(off as usize).or_else(|| s.seqnums.first().copied())
                        } else {
                            let idx = s.seqnums.partition_point(|&sn| sn < min_seqnum);
                            s.seqnums.get(idx).copied()
                        }
                    }
                    None => None,
                }
            })
        };
        self.pay_read(node, found, &scope).await;
        self.trace_end(&scope);
        found.map(|sn| self.fetch(sn))
    }

    /// Retrieves every live record of a sub-stream (Figure 5's
    /// `getStepLogs`). Costs one read round; Boki batches this scan.
    pub async fn read_stream(&self, node: NodeId, tag: Tag) -> Vec<Rc<LogRecord<P>>> {
        let scope = self.trace_begin("log_read_stream");
        let seqnums: Vec<SeqNum> = {
            let inner = self.inner.borrow();
            inner
                .streams
                .get(&tag)
                .map_or_else(Vec::new, |s| s.seqnums.clone())
        };
        self.pay_read(node, seqnums.first().copied(), &scope).await;
        self.trace_end(&scope);
        seqnums.into_iter().map(|sn| self.fetch(sn)).collect()
    }

    /// Deletes all records of `tag`'s sub-stream with seqnum ≤ `upto`
    /// (Figure 3's `logTrim`). A record's bytes are reclaimed once every
    /// one of its sub-streams has trimmed past it.
    pub async fn trim(&self, node: NodeId, tag: Tag, upto: SeqNum) {
        let _ = node;
        let scope = self.trace_begin("log_trim");
        let total = self.ctx.with_rng(|rng| self.model.log_append.sample(rng));
        self.ctx.sleep(total).await;
        let now = self.ctx.now();
        let mut inner = self.inner.borrow_mut();
        inner.counters.log_trims += 1;
        let inner = &mut *inner;
        let Some(stream) = inner.streams.get_mut(&tag) else {
            self.trace_end(&scope);
            return;
        };
        // Cut point: O(1) from the bound record's stored offset when it is
        // a live member of this stream; binary search otherwise.
        let cut = match inner
            .slots
            .get(upto.0.wrapping_sub(1) as usize)
            .and_then(Option::as_ref)
            .and_then(|slot| slot.memberships.last_offset_of(tag))
        {
            Some(off) => (off as usize + 1).saturating_sub(stream.trimmed),
            None => stream.seqnums.partition_point(|&sn| sn <= upto),
        };
        let mut freed = 0usize;
        for sn in stream.seqnums.drain(..cut) {
            // Each drained entry is one stream membership dying; the record
            // is reclaimed exactly when its last membership dies, so bytes
            // are freed exactly once per record — no re-deriving liveness
            // from the other streams.
            let idx = (sn.0 - 1) as usize;
            let slot = inner.slots[idx]
                .as_mut()
                .expect("stream index referenced a reclaimed record");
            slot.live_streams -= 1;
            if slot.live_streams == 0 {
                freed += slot.bytes;
                inner.slots[idx] = None;
                inner.live -= 1;
            }
        }
        stream.trimmed += cut;
        inner.bytes.add(now, -(freed as f64));
        if let Some((tracer, trace, span)) = &scope {
            tracer.instant(
                Lane::Storage,
                now,
                *trace,
                *span,
                "trim_reclaimed",
                format!("{cut} entries, {freed} bytes"),
            );
        }
        self.trace_end(&scope);
    }

    async fn pay_read(&self, node: NodeId, target: Option<SeqNum>, scope: &TraceScope) {
        let hit = match target {
            Some(sn) => {
                let mut inner = self.inner.borrow_mut();
                let hit = inner.cache_for(node).contains(&sn);
                if hit {
                    inner.counters.cache_hits += 1;
                } else {
                    inner.counters.cache_misses += 1;
                }
                hit
            }
            // Absent records answer from the node's stream index: cheap.
            None => true,
        };
        if let Some((tracer, trace, span)) = scope {
            if target.is_some() {
                tracer.instant(
                    Lane::Node(node.0),
                    self.ctx.now(),
                    *trace,
                    *span,
                    if hit { "cache_hit" } else { "cache_miss" },
                    String::new(),
                );
            }
        }
        let dist = if hit {
            self.model.log_read_cached
        } else {
            self.model.log_read_miss
        };
        let latency = self.ctx.with_rng(|rng| dist.sample(rng));
        self.ctx.sleep(latency).await;
        let mut inner = self.inner.borrow_mut();
        inner.counters.log_reads += 1;
        if let Some(sn) = target {
            // Refreshes recency on hit, fills (and possibly evicts) on miss.
            inner.cache_for(node).insert(sn);
        }
    }

    fn fetch(&self, sn: SeqNum) -> Rc<LogRecord<P>> {
        self.inner
            .borrow()
            .slot(sn)
            .map(|s| s.record.clone())
            .expect("stream index referenced a reclaimed record")
    }

    // ---- zero-latency inspection for tests, checkers, and the GC scan ----

    /// The seqnum the next append will receive.
    #[must_use]
    pub fn head_seqnum(&self) -> SeqNum {
        self.inner.borrow().next_seqnum
    }

    /// Live record count.
    #[must_use]
    pub fn live_records(&self) -> usize {
        self.inner.borrow().live
    }

    /// Current stored bytes.
    #[must_use]
    pub fn current_bytes(&self) -> f64 {
        self.inner.borrow().bytes.level()
    }

    /// Time-averaged stored bytes since the last window reset.
    #[must_use]
    pub fn average_bytes(&self) -> f64 {
        self.inner.borrow().bytes.average(self.ctx.now())
    }

    /// Restarts the storage-averaging window now.
    pub fn reset_storage_window(&self) {
        let now = self.ctx.now();
        self.inner.borrow_mut().bytes.reset_window(now);
    }

    /// Snapshot of op counters.
    #[must_use]
    pub fn counters(&self) -> OpCounters {
        self.inner.borrow().counters
    }

    /// Records currently held in `node`'s cache (test helper).
    #[must_use]
    pub fn node_cache_len(&self, node: NodeId) -> usize {
        self.inner
            .borrow()
            .node_cache
            .get(node.0 as usize)
            .map_or(0, LruSet::len)
    }

    /// Total evictions from `node`'s cache since creation (test helper).
    #[must_use]
    pub fn node_cache_evictions(&self, node: NodeId) -> u64 {
        self.inner
            .borrow()
            .node_cache
            .get(node.0 as usize)
            .map_or(0, LruSet::evictions)
    }

    /// Zero-latency peek at a sub-stream's live seqnums (test helper).
    #[must_use]
    pub fn peek_stream(&self, tag: Tag) -> Vec<SeqNum> {
        self.inner
            .borrow()
            .streams
            .get(&tag)
            .map_or_else(Vec::new, |s| s.seqnums.clone())
    }

    /// Zero-latency record fetch by seqnum (checker helper).
    #[must_use]
    pub fn peek_record(&self, sn: SeqNum) -> Option<Rc<LogRecord<P>>> {
        self.inner.borrow().slot(sn).map(|s| s.record.clone())
    }
}

impl<P> std::fmt::Debug for SharedLog<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        write!(
            f,
            "SharedLog(head={:?}, live={}, streams={})",
            inner.next_seqnum,
            inner.live,
            inner.streams.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use hm_common::ids::TagKind;
    use hm_sim::{Sim, SimTime};

    use super::*;

    const N0: NodeId = NodeId(0);
    const N1: NodeId = NodeId(1);

    fn setup() -> (Sim, SharedLog<String>) {
        let sim = Sim::new(11);
        let log = SharedLog::new(
            sim.ctx(),
            LatencyModel::uniform_test_model(),
            LogConfig::default(),
        );
        (sim, log)
    }

    fn t(name: &str) -> Tag {
        Tag::named(TagKind::StepLog, name)
    }

    #[test]
    fn append_assigns_increasing_seqnums() {
        let (mut sim, log) = setup();
        let l = log.clone();
        let (a, b) = sim.block_on(async move {
            let a = l.append(N0, vec![t("s")], "one".into()).await;
            let b = l.append(N0, vec![t("s")], "two".into()).await;
            (a, b)
        });
        assert!(a < b);
        assert_eq!(a, SeqNum(1));
        assert_eq!(log.head_seqnum(), SeqNum(3));
    }

    #[test]
    fn concurrent_appends_order_by_sequencer_arrival() {
        let (mut sim, log) = setup();
        let ctx = sim.ctx();
        let l1 = log.clone();
        let l2 = log.clone();
        let ctx2 = ctx.clone();
        let h1 = ctx.spawn(async move { l1.append(N0, vec![t("a")], "first".into()).await });
        let h2 = ctx.spawn(async move {
            // Starts 1µs later; sequencer sees it second.
            ctx2.sleep(SimTime::from_micros(1)).await;
            l2.append(N1, vec![t("b")], "second".into()).await
        });
        sim.run();
        assert_eq!(h1.try_take().unwrap(), SeqNum(1));
        assert_eq!(h2.try_take().unwrap(), SeqNum(2));
    }

    #[test]
    fn read_prev_seeks_backward_inclusive() {
        let (mut sim, log) = setup();
        let l = log.clone();
        sim.block_on(async move {
            let s1 = l.append(N0, vec![t("k")], "v1".into()).await;
            let _s2 = l.append(N0, vec![t("k")], "v2".into()).await;
            // Bound exactly at s1: sees v1.
            let r = l.read_prev(N0, t("k"), s1).await.unwrap();
            assert_eq!(r.payload, "v1");
            // Bound at MAX: sees the newest.
            let r = l.read_prev(N0, t("k"), SeqNum::MAX).await.unwrap();
            assert_eq!(r.payload, "v2");
            // Bound before everything: none.
            assert!(l.read_prev(N0, t("k"), SeqNum::ZERO).await.is_none());
        });
    }

    #[test]
    fn read_next_seeks_forward_inclusive() {
        let (mut sim, log) = setup();
        let l = log.clone();
        sim.block_on(async move {
            let s1 = l.append(N0, vec![t("k")], "v1".into()).await;
            let s2 = l.append(N0, vec![t("k")], "v2".into()).await;
            let r = l.read_next(N0, t("k"), s1).await.unwrap();
            assert_eq!(r.seqnum, s1);
            let r = l.read_next(N0, t("k"), s1.next()).await.unwrap();
            assert_eq!(r.seqnum, s2);
            assert!(l.read_next(N0, t("k"), s2.next()).await.is_none());
        });
    }

    #[test]
    fn multi_tag_records_visible_in_all_streams() {
        let (mut sim, log) = setup();
        let l = log.clone();
        sim.block_on(async move {
            let sn = l.append(N0, vec![t("step"), t("obj")], "w".into()).await;
            assert_eq!(
                l.read_prev(N0, t("step"), SeqNum::MAX)
                    .await
                    .unwrap()
                    .seqnum,
                sn
            );
            assert_eq!(
                l.read_prev(N0, t("obj"), SeqNum::MAX).await.unwrap().seqnum,
                sn
            );
        });
    }

    #[test]
    fn read_stream_returns_history_in_order() {
        let (mut sim, log) = setup();
        let l = log.clone();
        sim.block_on(async move {
            for i in 0..4 {
                l.append(N0, vec![t("hist")], format!("r{i}")).await;
            }
            let recs = l.read_stream(N0, t("hist")).await;
            let vals: Vec<&str> = recs.iter().map(|r| r.payload.as_str()).collect();
            assert_eq!(vals, vec!["r0", "r1", "r2", "r3"]);
        });
    }

    #[test]
    fn cond_append_success_then_conflict() {
        let (mut sim, log) = setup();
        let l = log.clone();
        sim.block_on(async move {
            let tag = t("inst");
            let out = l.cond_append(N0, vec![tag], "step0".into(), tag, 0).await;
            let CondAppendOutcome::Appended(first) = out else {
                panic!("expected success, got {out:?}")
            };
            // A peer retries step 0: conflicts and learns the winner.
            let out = l
                .cond_append(N1, vec![tag], "step0-dup".into(), tag, 0)
                .await;
            assert_eq!(out, CondAppendOutcome::Conflict(first));
            // Stream contains only the winner.
            assert_eq!(l.peek_stream(tag).len(), 1);
            assert_eq!(l.counters().cond_append_conflicts, 1);
            // Seqnums of undone appends are not reused but nothing is stored.
            let out = l.cond_append(N1, vec![tag], "step1".into(), tag, 1).await;
            assert!(matches!(out, CondAppendOutcome::Appended(_)));
        });
    }

    #[test]
    fn cond_append_racing_peers_single_winner() {
        let (mut sim, log) = setup();
        let ctx = sim.ctx();
        let tag = t("race");
        let mut handles = Vec::new();
        for i in 0..4u32 {
            let l = log.clone();
            handles.push(ctx.spawn(async move {
                l.cond_append(NodeId(i), vec![tag], format!("peer{i}"), tag, 0)
                    .await
            }));
        }
        sim.run();
        let outcomes: Vec<CondAppendOutcome> =
            handles.iter().map(|h| h.try_take().unwrap()).collect();
        let winners = outcomes
            .iter()
            .filter(|o| matches!(o, CondAppendOutcome::Appended(_)))
            .count();
        assert_eq!(winners, 1, "exactly one peer must win: {outcomes:?}");
        let winner_sn = log.peek_stream(tag)[0];
        for o in outcomes {
            if let CondAppendOutcome::Conflict(sn) = o {
                assert_eq!(sn, winner_sn);
            }
        }
    }

    #[test]
    fn trim_removes_prefix_and_keeps_offsets_stable() {
        let (mut sim, log) = setup();
        let l = log.clone();
        sim.block_on(async move {
            let tag = t("gc");
            let mut sns = Vec::new();
            for i in 0..5 {
                sns.push(l.append(N0, vec![tag], format!("r{i}")).await);
            }
            l.trim(N0, tag, sns[2]).await;
            assert_eq!(l.peek_stream(tag), vec![sns[3], sns[4]]);
            assert_eq!(l.live_records(), 2);
            // cond_append offsets still count trimmed records.
            let out = l.cond_append(N0, vec![tag], "r5".into(), tag, 5).await;
            assert!(matches!(out, CondAppendOutcome::Appended(_)), "{out:?}");
        });
    }

    #[test]
    fn trim_respects_multi_tag_references() {
        let (mut sim, log) = setup();
        let l = log.clone();
        sim.block_on(async move {
            let (a, b) = (t("a"), t("b"));
            let sn = l.append(N0, vec![a, b], "shared".into()).await;
            let solo = l.append(N0, vec![a], "solo".into()).await;
            l.trim(N0, a, solo).await;
            // The shared record survives via stream b.
            assert_eq!(l.live_records(), 1);
            assert_eq!(l.read_prev(N0, b, SeqNum::MAX).await.unwrap().seqnum, sn);
            l.trim(N0, b, sn).await;
            assert_eq!(l.live_records(), 0);
            assert_eq!(l.current_bytes(), 0.0);
        });
    }

    /// Regression test for trim byte accounting (the refcount rewrite's
    /// correctness obligation): across interleaved trims, revived streams,
    /// shared multi-tag records, and duplicated tags, every record's bytes
    /// must be freed exactly once — never double-freed (gauge would go
    /// negative) and never leaked (gauge would end above zero).
    #[test]
    fn trim_byte_accounting_exact_through_retag_cycles() {
        let (mut sim, log) = setup();
        let l = log.clone();
        sim.block_on(async move {
            let (a, b) = (t("cycle_a"), t("cycle_b"));
            // Shared record, then a solo record on `a`.
            let shared = l.append(N0, vec![a, b], "shared".into()).await;
            l.append(N0, vec![a], "solo".into()).await;
            // Trim `a` past both: only the solo record's bytes are freed;
            // the shared one survives via `b`.
            l.trim(N0, a, l.head_seqnum()).await;
            let shared_bytes = ("shared".len() + RECORD_META_BYTES) as f64;
            assert_eq!(l.current_bytes(), shared_bytes);
            assert_eq!(l.live_records(), 1);
            // Revive the trimmed stream `a`, then trim it again. The shared
            // record's `a` membership is already dead — a second trim of
            // `a` must not touch it (double-decrement would double-free).
            l.append(N0, vec![a], "revive".into()).await;
            l.trim(N0, a, l.head_seqnum()).await;
            assert_eq!(l.current_bytes(), shared_bytes, "shared must survive");
            // Now kill the last membership via `b`: bytes drop to exactly 0.
            l.trim(N0, b, shared).await;
            assert_eq!(l.current_bytes(), 0.0);
            assert_eq!(l.live_records(), 0);
            // Duplicated tags: one record, two memberships in one stream.
            // One trim covers both; bytes freed exactly once.
            l.append(N0, vec![a, a], "dup".into()).await;
            assert_eq!(l.peek_stream(a).len(), 2);
            l.trim(N0, a, l.head_seqnum()).await;
            assert_eq!(l.current_bytes(), 0.0, "dup-tag record freed once");
            assert_eq!(l.live_records(), 0);
            // A full cycle of revive-and-trim ends exactly where it began.
            for i in 0..3 {
                l.append(N0, vec![a, b], format!("r{i}")).await;
            }
            l.trim(N0, a, l.head_seqnum()).await;
            l.trim(N0, b, l.head_seqnum()).await;
            assert_eq!(l.current_bytes(), 0.0);
            assert_eq!(l.live_records(), 0);
        });
    }

    #[test]
    fn trim_bound_past_duplicate_tags_removes_all_copies() {
        let (mut sim, log) = setup();
        let l = log.clone();
        sim.block_on(async move {
            let a = t("dup_bound");
            // The bound record itself carries the tag twice: the O(1) cut
            // derived from its stored offset must cover both copies.
            let sn = l.append(N0, vec![a, a], "dd".into()).await;
            l.trim(N0, a, sn).await;
            assert!(l.peek_stream(a).is_empty());
            assert_eq!(l.live_records(), 0);
            assert_eq!(l.current_bytes(), 0.0);
        });
    }

    #[test]
    fn storage_accounting_tracks_payload_and_meta() {
        let (mut sim, log) = setup();
        let l = log.clone();
        sim.block_on(async move {
            l.append(N0, vec![t("x")], "12345".into()).await; // 5 bytes payload
        });
        assert_eq!(log.current_bytes(), (5 + RECORD_META_BYTES) as f64);
    }

    #[test]
    fn cached_read_is_faster_than_miss() {
        // Node 0 appends; node 1's first read misses, second hits.
        let (mut sim, log) = setup();
        let l = log.clone();
        let ctx = sim.ctx();
        sim.block_on(async move {
            l.append(N0, vec![t("c")], "v".into()).await;
            let start = ctx.now();
            l.read_prev(N1, t("c"), SeqNum::MAX).await;
            let miss_cost = ctx.now() - start;
            let start = ctx.now();
            l.read_prev(N1, t("c"), SeqNum::MAX).await;
            let hit_cost = ctx.now() - start;
            // Test model: miss 0.3ms, hit 0.1ms.
            assert!(
                miss_cost > hit_cost,
                "miss {miss_cost:?} vs hit {hit_cost:?}"
            );
            // The appender reads its own record from cache immediately.
            let start = ctx.now();
            l.read_prev(N0, t("c"), SeqNum::MAX).await;
            assert_eq!(ctx.now() - start, SimTime::from_micros(100));
        });
        let c = log.counters();
        assert_eq!(c.cache_misses, 1, "only node 1's first read missed");
        assert_eq!(c.cache_hits, 2);
    }

    #[test]
    fn empty_stream_reads_are_cheap_and_none() {
        let (mut sim, log) = setup();
        let l = log.clone();
        sim.block_on(async move {
            assert!(l.read_prev(N0, t("none"), SeqNum::MAX).await.is_none());
            assert!(l.read_next(N0, t("none"), SeqNum::ZERO).await.is_none());
            assert!(l.read_stream(N0, t("none")).await.is_empty());
        });
        let c = log.counters();
        assert_eq!(c.log_reads, 3);
        // Reads that found nothing touch no cache bucket.
        assert_eq!(c.cache_hits + c.cache_misses, 0);
    }

    #[test]
    fn node_cache_evicts_under_capacity_pressure() {
        let mut sim = Sim::new(12);
        let log: SharedLog<String> = SharedLog::new(
            sim.ctx(),
            LatencyModel::uniform_test_model(),
            LogConfig {
                node_cache_capacity: 2,
                ..LogConfig::default()
            },
        );
        let l = log.clone();
        sim.block_on(async move {
            // Three appends from node 0: its cache (capacity 2) must evict
            // the first record.
            let s1 = l.append(N0, vec![t("e1")], "a".into()).await;
            let _s2 = l.append(N0, vec![t("e2")], "b".into()).await;
            let _s3 = l.append(N0, vec![t("e3")], "c".into()).await;
            assert_eq!(l.node_cache_len(N0), 2);
            assert_eq!(l.node_cache_evictions(N0), 1);
            // Reading the evicted record is a miss — and pays miss latency.
            let start = l.read_prev(N0, t("e1"), s1).await.unwrap().seqnum;
            assert_eq!(start, s1);
            let c = l.counters();
            assert_eq!(c.cache_misses, 1, "evicted record must miss");
            // The miss refilled the cache (evicting the next-oldest entry),
            // so an immediate re-read hits.
            l.read_prev(N0, t("e1"), s1).await;
            assert_eq!(l.counters().cache_hits, 1);
            assert_eq!(l.node_cache_evictions(N0), 2);
        });
    }

    #[test]
    fn pay_read_latency_tracks_eviction() {
        let mut sim = Sim::new(13);
        let log: SharedLog<String> = SharedLog::new(
            sim.ctx(),
            LatencyModel::uniform_test_model(),
            LogConfig {
                node_cache_capacity: 1,
                ..LogConfig::default()
            },
        );
        let l = log.clone();
        let ctx = sim.ctx();
        sim.block_on(async move {
            let s1 = l.append(N0, vec![t("p1")], "a".into()).await;
            // s1 is cached (capacity 1). Reading it now is a cached read:
            // exactly the 0.1 ms hit latency of the test model.
            let start = ctx.now();
            l.read_prev(N0, t("p1"), s1).await;
            assert_eq!(ctx.now() - start, SimTime::from_micros(100));
            // A second append evicts s1 from the single-slot cache.
            l.append(N0, vec![t("p2")], "b".into()).await;
            // Now the same read pays the full 0.3 ms miss latency.
            let start = ctx.now();
            l.read_prev(N0, t("p1"), s1).await;
            assert_eq!(ctx.now() - start, SimTime::from_micros(300));
            let c = l.counters();
            assert_eq!((c.cache_hits, c.cache_misses), (1, 1));
        });
    }

    #[test]
    fn node_caches_are_independent() {
        let (mut sim, log) = setup();
        let l = log.clone();
        sim.block_on(async move {
            let sn = l.append(N0, vec![t("i")], "v".into()).await;
            // Node 0 (appender) hits; nodes 1 and 2 each miss once.
            l.read_prev(N0, t("i"), sn).await;
            l.read_prev(N1, t("i"), sn).await;
            l.read_prev(NodeId(2), t("i"), sn).await;
            l.read_prev(NodeId(2), t("i"), sn).await;
            let c = l.counters();
            assert_eq!(c.cache_hits, 2, "node 0 + node 2's second read");
            assert_eq!(c.cache_misses, 2, "nodes 1 and 2 first reads");
        });
    }

    #[test]
    fn read_bounds_resolve_via_stored_offsets_after_trim() {
        // Exercises the O(1) bound-resolution paths: bounds that name live,
        // trimmed, and foreign records must all agree with the definition
        // (latest ≤ max / earliest ≥ min over the live stream).
        let (mut sim, log) = setup();
        let l = log.clone();
        sim.block_on(async move {
            let (a, other) = (t("off_a"), t("off_o"));
            let mut sns = Vec::new();
            for i in 0..6 {
                sns.push(l.append(N0, vec![a], format!("r{i}")).await);
            }
            // A record of a different stream, interleaved in seqnum order.
            let foreign = l.append(N0, vec![other], "f".into()).await;
            l.trim(N0, a, sns[2]).await;
            // Live bound: resolves through its stored offset.
            assert_eq!(l.read_prev(N0, a, sns[4]).await.unwrap().seqnum, sns[4]);
            assert_eq!(l.read_next(N0, a, sns[4]).await.unwrap().seqnum, sns[4]);
            // Trimmed bound: read_prev sees nothing at or below it;
            // read_next jumps to the live front.
            assert!(l.read_prev(N0, a, sns[1]).await.is_none());
            assert_eq!(l.read_next(N0, a, sns[1]).await.unwrap().seqnum, sns[3]);
            // Bound that is a live record of a *different* stream: falls
            // back to the search path and still answers correctly.
            assert_eq!(l.read_prev(N0, a, foreign).await.unwrap().seqnum, sns[5]);
            assert!(l.read_next(N0, a, foreign).await.is_none());
        });
    }
}

#[cfg(test)]
mod replication_tests {
    use hm_common::ids::TagKind;
    use hm_common::latency::LatencyModel;
    use hm_common::{NodeId, Tag};
    use hm_sim::Sim;

    use super::*;

    fn setup() -> (Sim, SharedLog<u64>) {
        let sim = Sim::new(0x9e9);
        let log = SharedLog::new(
            sim.ctx(),
            LatencyModel::uniform_test_model(),
            LogConfig::default(),
        );
        (sim, log)
    }

    fn t() -> Tag {
        Tag::named(TagKind::StepLog, "rep")
    }

    async fn timed_append(log: &SharedLog<u64>, ctx: &hm_sim::SimCtx, v: u64) -> f64 {
        let start = ctx.now();
        log.append(NodeId(0), vec![t()], v).await;
        (ctx.now() - start).as_secs_f64() * 1e3
    }

    #[test]
    fn full_quorum_matches_calibration() {
        let (mut sim, log) = setup();
        let ctx = sim.ctx();
        let l = log.clone();
        let ms = sim.block_on(async move { timed_append(&l, &ctx, 1).await });
        // Test model: constant 1.0 ms append end to end.
        assert!((ms - 1.0).abs() < 1e-6, "healthy append {ms}ms");
        assert_eq!(log.live_storage_replicas(), 3);
        assert_eq!(log.degraded_appends(), 0);
    }

    #[test]
    fn replica_failure_slows_appends_but_preserves_availability() {
        let (mut sim, log) = setup();
        let ctx = sim.ctx();
        let l = log.clone();
        let (healthy, down_one, down_two) = sim.block_on(async move {
            let healthy = timed_append(&l, &ctx, 1).await;
            l.fail_storage_replica(0);
            let down_one = timed_append(&l, &ctx, 2).await;
            l.fail_storage_replica(1);
            let down_two = timed_append(&l, &ctx, 3).await;
            (healthy, down_one, down_two)
        });
        assert!(down_one > healthy, "losing a replica must cost latency");
        assert!(down_two > down_one, "losing the quorum costs more");
        assert_eq!(log.live_storage_replicas(), 1);
        // Below quorum strength: appends counted as degraded but succeed.
        assert_eq!(log.degraded_appends(), 1);
        assert_eq!(log.head_seqnum(), SeqNum(4), "all three appends landed");
    }

    #[test]
    fn recovery_restores_full_speed() {
        let (mut sim, log) = setup();
        let ctx = sim.ctx();
        let l = log.clone();
        let ms = sim.block_on(async move {
            l.fail_storage_replica(2);
            timed_append(&l, &ctx, 1).await;
            l.recover_storage_replica(2);
            timed_append(&l, &ctx, 2).await
        });
        assert!((ms - 1.0).abs() < 1e-6, "recovered append {ms}ms");
        assert_eq!(log.live_storage_replicas(), 3);
    }

    #[test]
    fn total_outage_pays_reconfiguration() {
        let (mut sim, log) = setup();
        let ctx = sim.ctx();
        let l = log.clone();
        let ms = sim.block_on(async move {
            for r in 0..3 {
                l.fail_storage_replica(r);
            }
            timed_append(&l, &ctx, 1).await
        });
        // Sequencer 0.4ms + 3 x 0.6ms storage = 2.2ms in the test model.
        assert!(ms > 2.0, "outage append {ms}ms");
        assert_eq!(log.degraded_appends(), 1);
    }
}
