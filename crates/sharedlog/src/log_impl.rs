//! The shared-log implementation.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use hm_common::latency::LatencyModel;
use hm_common::metrics::{OpCounters, TimeWeightedGauge};
use hm_common::{NodeId, SeqNum, Tag};
use hm_sim::SimCtx;

use crate::payload::Payload;

/// Per-record metadata bytes charged to log storage (`S_meta`, §4.6:
/// "a few dozen bytes" covering seqnum, tags, step, op kind).
pub const RECORD_META_BYTES: usize = 32;

/// One record in the shared log.
#[derive(Clone, Debug)]
pub struct LogRecord<P> {
    /// Globally unique, monotonically increasing position in the main log.
    pub seqnum: SeqNum,
    /// The sub-streams this record belongs to.
    pub tags: Vec<Tag>,
    /// Protocol-defined payload.
    pub payload: P,
}

/// Result of a successful [`SharedLog::cond_append`], or the conflict info
/// the paper's `logCondAppend` returns (§5.1): the seqnum of the record that
/// already occupies the expected position, so the losing instance can adopt
/// the winner's state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CondAppendOutcome {
    /// This append won: the record landed at the expected offset.
    Appended(SeqNum),
    /// A peer's record already occupies the expected offset; the append was
    /// undone. Carries the winner's seqnum.
    Conflict(SeqNum),
}

/// Tuning knobs for the simulated logging layer.
#[derive(Clone, Copy, Debug)]
pub struct LogConfig {
    /// Fraction of append latency spent *before* the sequencer assigns the
    /// seqnum (the request's trip to the sequencer). Concurrent appends
    /// therefore race for order, like on the real network.
    pub sequencer_fraction: f64,
    /// Number of function nodes with record caches.
    pub nodes: u32,
    /// Log storage replicas (the paper's setup uses three storage nodes).
    pub replicas: u32,
    /// Replicas that must acknowledge an append before it is durable.
    pub quorum: u32,
}

impl Default for LogConfig {
    fn default() -> LogConfig {
        LogConfig {
            sequencer_fraction: 0.4,
            nodes: 8,
            replicas: 3,
            quorum: 2,
        }
    }
}

/// Per-tag sub-stream: seqnums ascending, plus how many records have been
/// trimmed from the front. Offsets into the *untrimmed* stream stay stable,
/// which `cond_append` relies on.
#[derive(Default)]
struct Stream {
    seqnums: Vec<SeqNum>,
    trimmed: usize,
}

impl Stream {
    fn len_total(&self) -> usize {
        self.trimmed + self.seqnums.len()
    }

    /// Seqnum at absolute offset, if still live.
    fn at(&self, offset: usize) -> Option<SeqNum> {
        offset
            .checked_sub(self.trimmed)
            .and_then(|i| self.seqnums.get(i).copied())
    }
}

struct LogInner<P> {
    /// Storage replicas currently down (by index `0..config.replicas`).
    failed_replicas: HashSet<u32>,
    /// Appends persisted while fewer than `quorum` replicas were live —
    /// the reconfigured-view path (availability preserved, like Boki's
    /// view change, but worth counting).
    degraded_appends: u64,
    /// All live records by seqnum.
    records: HashMap<SeqNum, Rc<LogRecord<P>>>,
    streams: HashMap<Tag, Stream>,
    next_seqnum: SeqNum,
    /// (node, seqnum) pairs present in a function node's cache.
    node_cache: HashSet<(NodeId, SeqNum)>,
    bytes: TimeWeightedGauge,
    counters: OpCounters,
}

/// Handle to the simulated shared log. Cheap to clone; clones share state.
pub struct SharedLog<P> {
    ctx: SimCtx,
    model: LatencyModel,
    config: LogConfig,
    inner: Rc<RefCell<LogInner<P>>>,
}

impl<P> Clone for SharedLog<P> {
    fn clone(&self) -> Self {
        SharedLog {
            ctx: self.ctx.clone(),
            model: self.model,
            config: self.config,
            inner: self.inner.clone(),
        }
    }
}

impl<P: Payload> SharedLog<P> {
    /// Creates an empty log. Seqnums start at 1 so that [`SeqNum::ZERO`]
    /// can mean "before everything".
    #[must_use]
    pub fn new(ctx: SimCtx, model: LatencyModel, config: LogConfig) -> SharedLog<P> {
        let now = ctx.now();
        SharedLog {
            ctx,
            model,
            config,
            inner: Rc::new(RefCell::new(LogInner {
                failed_replicas: HashSet::new(),
                degraded_appends: 0,
                records: HashMap::new(),
                streams: HashMap::new(),
                next_seqnum: SeqNum(1),
                node_cache: HashSet::new(),
                bytes: TimeWeightedGauge::new(now),
                counters: OpCounters::default(),
            })),
        }
    }

    /// Appends a record tagged with `tags`; returns its seqnum.
    ///
    /// Latency is one sample of the calibrated log-append distribution,
    /// split around the sequencer's order assignment; the storage phase
    /// completes when a quorum of replicas has acknowledged (the slowest
    /// acknowledging replica sets the pace, so losing a replica visibly
    /// fattens the tail).
    pub async fn append(&self, node: NodeId, tags: Vec<Tag>, payload: P) -> SeqNum {
        let total = self.ctx.with_rng(|rng| self.model.log_append.sample(rng));
        let to_sequencer = total.mul_f64(self.config.sequencer_fraction);
        self.ctx.sleep(to_sequencer).await;
        let seqnum = self.install(node, tags, payload);
        let storage = self.quorum_storage_latency(total.saturating_sub(to_sequencer));
        self.ctx.sleep(storage).await;
        seqnum
    }

    /// The storage-phase latency. The calibrated log-append distribution
    /// already describes a healthy quorum-of-`replicas` write (DESIGN.md
    /// §4), so the full-strength path costs exactly the base sample. With
    /// replicas down, the quorum must include proportionally worse
    /// replicas: each missing replica fattens the write by ~25 % plus an
    /// extra tail jitter. Below quorum strength, the layer reconfigures
    /// (Boki's view change) and the append is counted as degraded.
    fn quorum_storage_latency(&self, base: std::time::Duration) -> std::time::Duration {
        let mut inner = self.inner.borrow_mut();
        let live = self.config.replicas - inner.failed_replicas.len() as u32;
        if live >= self.config.replicas {
            return base;
        }
        if live < self.config.quorum {
            inner.degraded_appends += 1;
        }
        drop(inner);
        if live == 0 {
            // Total storage outage: a reconfiguration round on top.
            return base.saturating_mul(3);
        }
        let missing = (self.config.replicas - live) as f64;
        let jitter = self
            .ctx
            .with_rng(|rng| hm_common::latency::sample_standard_normal(rng).abs());
        base.mul_f64(1.0 + 0.25 * missing + 0.15 * jitter)
    }

    /// Marks a storage replica as failed (index `0..replicas`).
    pub fn fail_storage_replica(&self, replica: u32) {
        self.inner
            .borrow_mut()
            .failed_replicas
            .insert(replica % self.config.replicas);
    }

    /// Brings a failed storage replica back.
    pub fn recover_storage_replica(&self, replica: u32) {
        self.inner
            .borrow_mut()
            .failed_replicas
            .remove(&(replica % self.config.replicas));
    }

    /// Number of live storage replicas.
    #[must_use]
    pub fn live_storage_replicas(&self) -> u32 {
        self.config.replicas - self.inner.borrow().failed_replicas.len() as u32
    }

    /// Appends persisted below the configured quorum (degraded views).
    #[must_use]
    pub fn degraded_appends(&self) -> u64 {
        self.inner.borrow().degraded_appends
    }

    /// Conditional append (§5.1, Figure 3's `logCondAppend`).
    ///
    /// Appends like [`SharedLog::append`], then checks that the new record's
    /// offset within the `cond_tag` sub-stream equals `cond_pos`. On
    /// mismatch the append is undone and the seqnum of the record actually
    /// at `cond_pos` is returned, so exactly one peer instance wins each
    /// step and losers can adopt the winner's record.
    pub async fn cond_append(
        &self,
        node: NodeId,
        tags: Vec<Tag>,
        payload: P,
        cond_tag: Tag,
        cond_pos: usize,
    ) -> CondAppendOutcome {
        debug_assert!(
            tags.contains(&cond_tag),
            "cond_tag must be among the record's tags"
        );
        let total = self.ctx.with_rng(|rng| self.model.log_append.sample(rng));
        let to_sequencer = total.mul_f64(self.config.sequencer_fraction);
        self.ctx.sleep(to_sequencer).await;
        // Sequencing and the condition check are atomic at the logging
        // layer: that is the point of logCondAppend (it resolves conflicts
        // "in place", unlike Boki's separate append-then-read).
        let outcome = {
            let mut inner = self.inner.borrow_mut();
            let offset = inner.streams.get(&cond_tag).map_or(0, Stream::len_total);
            if offset == cond_pos {
                drop(inner);
                CondAppendOutcome::Appended(self.install(node, tags, payload))
            } else {
                inner.counters.cond_append_conflicts += 1;
                let winner = inner
                    .streams
                    .get(&cond_tag)
                    .and_then(|s| s.at(cond_pos))
                    .unwrap_or(SeqNum::ZERO);
                CondAppendOutcome::Conflict(winner)
            }
        };
        let storage = self.quorum_storage_latency(total.saturating_sub(to_sequencer));
        self.ctx.sleep(storage).await;
        outcome
    }

    fn install(&self, node: NodeId, tags: Vec<Tag>, payload: P) -> SeqNum {
        let now = self.ctx.now();
        let mut inner = self.inner.borrow_mut();
        let seqnum = inner.next_seqnum;
        inner.next_seqnum = seqnum.next();
        let bytes = (payload.size_bytes() + RECORD_META_BYTES) as f64;
        let record = Rc::new(LogRecord {
            seqnum,
            tags: tags.clone(),
            payload,
        });
        inner.records.insert(seqnum, record);
        for tag in tags {
            inner.streams.entry(tag).or_default().seqnums.push(seqnum);
        }
        // The appending node caches its own record.
        inner.node_cache.insert((node, seqnum));
        inner.bytes.add(now, bytes);
        inner.counters.log_appends += 1;
        seqnum
    }

    /// Reads the latest record in `tag`'s sub-stream with seqnum ≤
    /// `max_seqnum` (Figure 3's `logReadPrev`).
    pub async fn read_prev(
        &self,
        node: NodeId,
        tag: Tag,
        max_seqnum: SeqNum,
    ) -> Option<Rc<LogRecord<P>>> {
        let found = {
            let inner = self.inner.borrow();
            inner.streams.get(&tag).and_then(|s| {
                let idx = s.seqnums.partition_point(|&sn| sn <= max_seqnum);
                idx.checked_sub(1).and_then(|i| s.seqnums.get(i).copied())
            })
        };
        self.pay_read(node, found).await;
        found.map(|sn| self.fetch(sn))
    }

    /// Reads the earliest record in `tag`'s sub-stream with seqnum ≥
    /// `min_seqnum` (Figure 3's `logReadNext`).
    pub async fn read_next(
        &self,
        node: NodeId,
        tag: Tag,
        min_seqnum: SeqNum,
    ) -> Option<Rc<LogRecord<P>>> {
        let found = {
            let inner = self.inner.borrow();
            inner.streams.get(&tag).and_then(|s| {
                let idx = s.seqnums.partition_point(|&sn| sn < min_seqnum);
                s.seqnums.get(idx).copied()
            })
        };
        self.pay_read(node, found).await;
        found.map(|sn| self.fetch(sn))
    }

    /// Retrieves every live record of a sub-stream (Figure 5's
    /// `getStepLogs`). Costs one read round; Boki batches this scan.
    pub async fn read_stream(&self, node: NodeId, tag: Tag) -> Vec<Rc<LogRecord<P>>> {
        let seqnums: Vec<SeqNum> = {
            let inner = self.inner.borrow();
            inner
                .streams
                .get(&tag)
                .map_or_else(Vec::new, |s| s.seqnums.clone())
        };
        self.pay_read(node, seqnums.first().copied()).await;
        seqnums.into_iter().map(|sn| self.fetch(sn)).collect()
    }

    /// Deletes all records of `tag`'s sub-stream with seqnum ≤ `upto`
    /// (Figure 3's `logTrim`). A record's bytes are reclaimed once every
    /// one of its sub-streams has trimmed past it.
    pub async fn trim(&self, node: NodeId, tag: Tag, upto: SeqNum) {
        let _ = node;
        let total = self.ctx.with_rng(|rng| self.model.log_append.sample(rng));
        self.ctx.sleep(total).await;
        let now = self.ctx.now();
        let mut inner = self.inner.borrow_mut();
        inner.counters.log_trims += 1;
        let Some(stream) = inner.streams.get_mut(&tag) else {
            return;
        };
        let cut = stream.seqnums.partition_point(|&sn| sn <= upto);
        let removed: Vec<SeqNum> = stream.seqnums.drain(..cut).collect();
        stream.trimmed += removed.len();
        let mut freed = 0usize;
        for sn in removed {
            // Reclaim the record when no other live stream still lists it.
            let still_referenced = inner.records.get(&sn).is_some_and(|r| {
                r.tags.iter().any(|t| {
                    *t != tag
                        && inner
                            .streams
                            .get(t)
                            .is_some_and(|s| s.seqnums.binary_search(&sn).is_ok())
                })
            });
            if !still_referenced {
                if let Some(r) = inner.records.remove(&sn) {
                    freed += r.payload.size_bytes() + RECORD_META_BYTES;
                }
            }
        }
        inner.bytes.add(now, -(freed as f64));
    }

    async fn pay_read(&self, node: NodeId, target: Option<SeqNum>) {
        let hit = match target {
            Some(sn) => self.inner.borrow().node_cache.contains(&(node, sn)),
            // Absent records answer from the node's stream index: cheap.
            None => true,
        };
        let dist = if hit {
            self.model.log_read_cached
        } else {
            self.model.log_read_miss
        };
        let latency = self.ctx.with_rng(|rng| dist.sample(rng));
        self.ctx.sleep(latency).await;
        let mut inner = self.inner.borrow_mut();
        inner.counters.log_reads += 1;
        if let Some(sn) = target {
            inner.node_cache.insert((node, sn));
        }
    }

    fn fetch(&self, sn: SeqNum) -> Rc<LogRecord<P>> {
        self.inner
            .borrow()
            .records
            .get(&sn)
            .cloned()
            .expect("stream index referenced a reclaimed record")
    }

    // ---- zero-latency inspection for tests, checkers, and the GC scan ----

    /// The seqnum the next append will receive.
    #[must_use]
    pub fn head_seqnum(&self) -> SeqNum {
        self.inner.borrow().next_seqnum
    }

    /// Live record count.
    #[must_use]
    pub fn live_records(&self) -> usize {
        self.inner.borrow().records.len()
    }

    /// Current stored bytes.
    #[must_use]
    pub fn current_bytes(&self) -> f64 {
        self.inner.borrow().bytes.level()
    }

    /// Time-averaged stored bytes since the last window reset.
    #[must_use]
    pub fn average_bytes(&self) -> f64 {
        self.inner.borrow().bytes.average(self.ctx.now())
    }

    /// Restarts the storage-averaging window now.
    pub fn reset_storage_window(&self) {
        let now = self.ctx.now();
        self.inner.borrow_mut().bytes.reset_window(now);
    }

    /// Snapshot of op counters.
    #[must_use]
    pub fn counters(&self) -> OpCounters {
        self.inner.borrow().counters
    }

    /// Zero-latency peek at a sub-stream's live seqnums (test helper).
    #[must_use]
    pub fn peek_stream(&self, tag: Tag) -> Vec<SeqNum> {
        self.inner
            .borrow()
            .streams
            .get(&tag)
            .map_or_else(Vec::new, |s| s.seqnums.clone())
    }

    /// Zero-latency record fetch by seqnum (checker helper).
    #[must_use]
    pub fn peek_record(&self, sn: SeqNum) -> Option<Rc<LogRecord<P>>> {
        self.inner.borrow().records.get(&sn).cloned()
    }
}

impl<P> std::fmt::Debug for SharedLog<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        write!(
            f,
            "SharedLog(head={:?}, live={}, streams={})",
            inner.next_seqnum,
            inner.records.len(),
            inner.streams.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use hm_common::ids::TagKind;
    use hm_sim::{Sim, SimTime};

    use super::*;

    const N0: NodeId = NodeId(0);
    const N1: NodeId = NodeId(1);

    fn setup() -> (Sim, SharedLog<String>) {
        let sim = Sim::new(11);
        let log = SharedLog::new(
            sim.ctx(),
            LatencyModel::uniform_test_model(),
            LogConfig::default(),
        );
        (sim, log)
    }

    fn t(name: &str) -> Tag {
        Tag::named(TagKind::StepLog, name)
    }

    #[test]
    fn append_assigns_increasing_seqnums() {
        let (mut sim, log) = setup();
        let l = log.clone();
        let (a, b) = sim.block_on(async move {
            let a = l.append(N0, vec![t("s")], "one".into()).await;
            let b = l.append(N0, vec![t("s")], "two".into()).await;
            (a, b)
        });
        assert!(a < b);
        assert_eq!(a, SeqNum(1));
        assert_eq!(log.head_seqnum(), SeqNum(3));
    }

    #[test]
    fn concurrent_appends_order_by_sequencer_arrival() {
        let (mut sim, log) = setup();
        let ctx = sim.ctx();
        let l1 = log.clone();
        let l2 = log.clone();
        let ctx2 = ctx.clone();
        let h1 = ctx.spawn(async move { l1.append(N0, vec![t("a")], "first".into()).await });
        let h2 = ctx.spawn(async move {
            // Starts 1µs later; sequencer sees it second.
            ctx2.sleep(SimTime::from_micros(1)).await;
            l2.append(N1, vec![t("b")], "second".into()).await
        });
        sim.run();
        assert_eq!(h1.try_take().unwrap(), SeqNum(1));
        assert_eq!(h2.try_take().unwrap(), SeqNum(2));
    }

    #[test]
    fn read_prev_seeks_backward_inclusive() {
        let (mut sim, log) = setup();
        let l = log.clone();
        sim.block_on(async move {
            let s1 = l.append(N0, vec![t("k")], "v1".into()).await;
            let _s2 = l.append(N0, vec![t("k")], "v2".into()).await;
            // Bound exactly at s1: sees v1.
            let r = l.read_prev(N0, t("k"), s1).await.unwrap();
            assert_eq!(r.payload, "v1");
            // Bound at MAX: sees the newest.
            let r = l.read_prev(N0, t("k"), SeqNum::MAX).await.unwrap();
            assert_eq!(r.payload, "v2");
            // Bound before everything: none.
            assert!(l.read_prev(N0, t("k"), SeqNum::ZERO).await.is_none());
        });
    }

    #[test]
    fn read_next_seeks_forward_inclusive() {
        let (mut sim, log) = setup();
        let l = log.clone();
        sim.block_on(async move {
            let s1 = l.append(N0, vec![t("k")], "v1".into()).await;
            let s2 = l.append(N0, vec![t("k")], "v2".into()).await;
            let r = l.read_next(N0, t("k"), s1).await.unwrap();
            assert_eq!(r.seqnum, s1);
            let r = l.read_next(N0, t("k"), s1.next()).await.unwrap();
            assert_eq!(r.seqnum, s2);
            assert!(l.read_next(N0, t("k"), s2.next()).await.is_none());
        });
    }

    #[test]
    fn multi_tag_records_visible_in_all_streams() {
        let (mut sim, log) = setup();
        let l = log.clone();
        sim.block_on(async move {
            let sn = l.append(N0, vec![t("step"), t("obj")], "w".into()).await;
            assert_eq!(
                l.read_prev(N0, t("step"), SeqNum::MAX)
                    .await
                    .unwrap()
                    .seqnum,
                sn
            );
            assert_eq!(
                l.read_prev(N0, t("obj"), SeqNum::MAX).await.unwrap().seqnum,
                sn
            );
        });
    }

    #[test]
    fn read_stream_returns_history_in_order() {
        let (mut sim, log) = setup();
        let l = log.clone();
        sim.block_on(async move {
            for i in 0..4 {
                l.append(N0, vec![t("hist")], format!("r{i}")).await;
            }
            let recs = l.read_stream(N0, t("hist")).await;
            let vals: Vec<&str> = recs.iter().map(|r| r.payload.as_str()).collect();
            assert_eq!(vals, vec!["r0", "r1", "r2", "r3"]);
        });
    }

    #[test]
    fn cond_append_success_then_conflict() {
        let (mut sim, log) = setup();
        let l = log.clone();
        sim.block_on(async move {
            let tag = t("inst");
            let out = l.cond_append(N0, vec![tag], "step0".into(), tag, 0).await;
            let CondAppendOutcome::Appended(first) = out else {
                panic!("expected success, got {out:?}")
            };
            // A peer retries step 0: conflicts and learns the winner.
            let out = l
                .cond_append(N1, vec![tag], "step0-dup".into(), tag, 0)
                .await;
            assert_eq!(out, CondAppendOutcome::Conflict(first));
            // Stream contains only the winner.
            assert_eq!(l.peek_stream(tag).len(), 1);
            assert_eq!(l.counters().cond_append_conflicts, 1);
            // Seqnums of undone appends are not reused but nothing is stored.
            let out = l.cond_append(N1, vec![tag], "step1".into(), tag, 1).await;
            assert!(matches!(out, CondAppendOutcome::Appended(_)));
        });
    }

    #[test]
    fn cond_append_racing_peers_single_winner() {
        let (mut sim, log) = setup();
        let ctx = sim.ctx();
        let tag = t("race");
        let mut handles = Vec::new();
        for i in 0..4u32 {
            let l = log.clone();
            handles.push(ctx.spawn(async move {
                l.cond_append(NodeId(i), vec![tag], format!("peer{i}"), tag, 0)
                    .await
            }));
        }
        sim.run();
        let outcomes: Vec<CondAppendOutcome> =
            handles.iter().map(|h| h.try_take().unwrap()).collect();
        let winners = outcomes
            .iter()
            .filter(|o| matches!(o, CondAppendOutcome::Appended(_)))
            .count();
        assert_eq!(winners, 1, "exactly one peer must win: {outcomes:?}");
        let winner_sn = log.peek_stream(tag)[0];
        for o in outcomes {
            if let CondAppendOutcome::Conflict(sn) = o {
                assert_eq!(sn, winner_sn);
            }
        }
    }

    #[test]
    fn trim_removes_prefix_and_keeps_offsets_stable() {
        let (mut sim, log) = setup();
        let l = log.clone();
        sim.block_on(async move {
            let tag = t("gc");
            let mut sns = Vec::new();
            for i in 0..5 {
                sns.push(l.append(N0, vec![tag], format!("r{i}")).await);
            }
            l.trim(N0, tag, sns[2]).await;
            assert_eq!(l.peek_stream(tag), vec![sns[3], sns[4]]);
            assert_eq!(l.live_records(), 2);
            // cond_append offsets still count trimmed records.
            let out = l.cond_append(N0, vec![tag], "r5".into(), tag, 5).await;
            assert!(matches!(out, CondAppendOutcome::Appended(_)), "{out:?}");
        });
    }

    #[test]
    fn trim_respects_multi_tag_references() {
        let (mut sim, log) = setup();
        let l = log.clone();
        sim.block_on(async move {
            let (a, b) = (t("a"), t("b"));
            let sn = l.append(N0, vec![a, b], "shared".into()).await;
            let solo = l.append(N0, vec![a], "solo".into()).await;
            l.trim(N0, a, solo).await;
            // The shared record survives via stream b.
            assert_eq!(l.live_records(), 1);
            assert_eq!(l.read_prev(N0, b, SeqNum::MAX).await.unwrap().seqnum, sn);
            l.trim(N0, b, sn).await;
            assert_eq!(l.live_records(), 0);
            assert_eq!(l.current_bytes(), 0.0);
        });
    }

    #[test]
    fn storage_accounting_tracks_payload_and_meta() {
        let (mut sim, log) = setup();
        let l = log.clone();
        sim.block_on(async move {
            l.append(N0, vec![t("x")], "12345".into()).await; // 5 bytes payload
        });
        assert_eq!(log.current_bytes(), (5 + RECORD_META_BYTES) as f64);
    }

    #[test]
    fn cached_read_is_faster_than_miss() {
        // Node 0 appends; node 1's first read misses, second hits.
        let (mut sim, log) = setup();
        let l = log.clone();
        let ctx = sim.ctx();
        sim.block_on(async move {
            l.append(N0, vec![t("c")], "v".into()).await;
            let start = ctx.now();
            l.read_prev(N1, t("c"), SeqNum::MAX).await;
            let miss_cost = ctx.now() - start;
            let start = ctx.now();
            l.read_prev(N1, t("c"), SeqNum::MAX).await;
            let hit_cost = ctx.now() - start;
            // Test model: miss 0.3ms, hit 0.1ms.
            assert!(
                miss_cost > hit_cost,
                "miss {miss_cost:?} vs hit {hit_cost:?}"
            );
            // The appender reads its own record from cache immediately.
            let start = ctx.now();
            l.read_prev(N0, t("c"), SeqNum::MAX).await;
            assert_eq!(ctx.now() - start, SimTime::from_micros(100));
        });
    }

    #[test]
    fn empty_stream_reads_are_cheap_and_none() {
        let (mut sim, log) = setup();
        let l = log.clone();
        sim.block_on(async move {
            assert!(l.read_prev(N0, t("none"), SeqNum::MAX).await.is_none());
            assert!(l.read_next(N0, t("none"), SeqNum::ZERO).await.is_none());
            assert!(l.read_stream(N0, t("none")).await.is_empty());
        });
        assert_eq!(log.counters().log_reads, 3);
    }
}

#[cfg(test)]
mod replication_tests {
    use hm_common::ids::TagKind;
    use hm_common::latency::LatencyModel;
    use hm_common::{NodeId, Tag};
    use hm_sim::Sim;

    use super::*;

    fn setup() -> (Sim, SharedLog<u64>) {
        let sim = Sim::new(0x9e9);
        let log = SharedLog::new(
            sim.ctx(),
            LatencyModel::uniform_test_model(),
            LogConfig::default(),
        );
        (sim, log)
    }

    fn t() -> Tag {
        Tag::named(TagKind::StepLog, "rep")
    }

    async fn timed_append(log: &SharedLog<u64>, ctx: &hm_sim::SimCtx, v: u64) -> f64 {
        let start = ctx.now();
        log.append(NodeId(0), vec![t()], v).await;
        (ctx.now() - start).as_secs_f64() * 1e3
    }

    #[test]
    fn full_quorum_matches_calibration() {
        let (mut sim, log) = setup();
        let ctx = sim.ctx();
        let l = log.clone();
        let ms = sim.block_on(async move { timed_append(&l, &ctx, 1).await });
        // Test model: constant 1.0 ms append end to end.
        assert!((ms - 1.0).abs() < 1e-6, "healthy append {ms}ms");
        assert_eq!(log.live_storage_replicas(), 3);
        assert_eq!(log.degraded_appends(), 0);
    }

    #[test]
    fn replica_failure_slows_appends_but_preserves_availability() {
        let (mut sim, log) = setup();
        let ctx = sim.ctx();
        let l = log.clone();
        let (healthy, down_one, down_two) = sim.block_on(async move {
            let healthy = timed_append(&l, &ctx, 1).await;
            l.fail_storage_replica(0);
            let down_one = timed_append(&l, &ctx, 2).await;
            l.fail_storage_replica(1);
            let down_two = timed_append(&l, &ctx, 3).await;
            (healthy, down_one, down_two)
        });
        assert!(down_one > healthy, "losing a replica must cost latency");
        assert!(down_two > down_one, "losing the quorum costs more");
        assert_eq!(log.live_storage_replicas(), 1);
        // Below quorum strength: appends counted as degraded but succeed.
        assert_eq!(log.degraded_appends(), 1);
        assert_eq!(log.head_seqnum(), SeqNum(4), "all three appends landed");
    }

    #[test]
    fn recovery_restores_full_speed() {
        let (mut sim, log) = setup();
        let ctx = sim.ctx();
        let l = log.clone();
        let ms = sim.block_on(async move {
            l.fail_storage_replica(2);
            timed_append(&l, &ctx, 1).await;
            l.recover_storage_replica(2);
            timed_append(&l, &ctx, 2).await
        });
        assert!((ms - 1.0).abs() < 1e-6, "recovered append {ms}ms");
        assert_eq!(log.live_storage_replicas(), 3);
    }

    #[test]
    fn total_outage_pays_reconfiguration() {
        let (mut sim, log) = setup();
        let ctx = sim.ctx();
        let l = log.clone();
        let ms = sim.block_on(async move {
            for r in 0..3 {
                l.fail_storage_replica(r);
            }
            timed_append(&l, &ctx, 1).await
        });
        // Sequencer 0.4ms + 3 x 0.6ms storage = 2.2ms in the test model.
        assert!(ms > 2.0, "outage append {ms}ms");
        assert_eq!(log.degraded_appends(), 1);
    }
}
