//! The payload contract for log records.

/// What the shared log requires of record payloads.
///
/// The log is generic so that it stays a pure substrate: the Halfmoon
/// protocols define their own record enum and the log never inspects it.
/// `size_bytes` feeds the storage-overhead accounting of §6.3 (a write-log
/// record is a few dozen bytes of metadata; a read-log record carries the
/// whole read value).
///
/// The `Clone + 'static` bounds exist because the log's group-commit
/// flushes run on detached simulation tasks (so a crashing appender can
/// never strand its batch peers), and a detached task must own its
/// records outright.
pub trait Payload: Clone + 'static {
    /// Approximate serialized size of this payload in bytes, *excluding*
    /// the per-record metadata the log itself charges.
    fn size_bytes(&self) -> usize;
}

impl Payload for () {
    fn size_bytes(&self) -> usize {
        0
    }
}

impl Payload for u64 {
    fn size_bytes(&self) -> usize {
        8
    }
}

impl Payload for String {
    fn size_bytes(&self) -> usize {
        self.len()
    }
}

impl Payload for hm_common::Value {
    fn size_bytes(&self) -> usize {
        hm_common::Value::size_bytes(self)
    }
}

/// Zero-copy payload: cloning bumps a refcount, and storage accounting
/// charges the *logical* view length once per record — a record holding a
/// narrow window of a large shared buffer is charged only its window, and
/// two records sharing one buffer each charge their own view (§6.3 counts
/// what a real log would persist per record, not process-level residency).
impl Payload for hm_common::SharedBytes {
    fn size_bytes(&self) -> usize {
        self.len()
    }
}
